package core

import (
	"fmt"
	"strings"
	"testing"

	"github.com/mitos-project/mitos/internal/cluster"
	"github.com/mitos-project/mitos/internal/ir"
	"github.com/mitos-project/mitos/internal/store"
)

// These tests pin down the bag-identifier selection rules of paper
// Sec. 5.2.2–5.2.3 at the host level, using a hand-fed execution path.

// newSelectionHost builds a host for an operator in block opBlock with
// inputs from producers in the given blocks (phi inputs carry PredBlock).
func newSelectionHost(opBlock ir.BlockID, kind ir.OpKind, producers []ir.BlockID, preds []ir.BlockID) *host {
	op := &PlanOp{
		Instr: &ir.Instr{Var: "x", Kind: kind, Args: make([]string, len(producers))},
		Block: opBlock,
		Par:   1,
	}
	for i, pb := range producers {
		op.Instr.Args[i] = fmt.Sprintf("in%d", i)
		in := PlanInput{Producer: &PlanOp{Instr: &ir.Instr{Var: fmt.Sprintf("in%d", i)}, Block: pb}}
		if preds != nil {
			in.PredBlock = preds[i]
		}
		op.Inputs = append(op.Inputs, in)
	}
	rt := &runtime{store: store.NewMemStore(), events: make(chan CoordEvent, 16)}
	return newHost(rt, op, 0)
}

func feedPath(h *host, blocks ...ir.BlockID) {
	for _, b := range blocks {
		h.path = append(h.path, b)
		h.noteOcc(b, len(h.path))
	}
}

// TestInputSelectionLongestPrefix reproduces the paper's Fig. 4a example:
// with path ABBABBB, an operator in B reading from a producer in A must
// select A's bag from position 4 (the prefix ABBA) for its output at
// position 7.
func TestInputSelectionLongestPrefix(t *testing.T) {
	const A, B = 1, 2
	h := newSelectionHost(B, ir.OpMap, []ir.BlockID{A}, nil)
	h.op.Instr.Kind = ir.OpCopy // no UDF needed
	feedPath(h, A, B, B, A, B, B, B)
	if err := h.startOutput(7); err != nil {
		t.Fatal(err)
	}
	if got := h.cur.inPos[0]; got != 4 {
		t.Errorf("input position = %d, want 4 (prefix ABBA)", got)
	}
	// Output at position 5 selects the same occurrence of A.
	h.cur = nil
	if err := h.startOutput(5); err != nil {
		t.Fatal(err)
	}
	if got := h.cur.inPos[0]; got != 4 {
		t.Errorf("input position = %d, want 4", got)
	}
	// Output at position 2 (before the second A) selects position 1.
	h.cur = nil
	if err := h.startOutput(2); err != nil {
		t.Fatal(err)
	}
	if got := h.cur.inPos[0]; got != 1 {
		t.Errorf("input position = %d, want 1", got)
	}
}

// TestInputSelectionSameBlock: a producer in the operator's own block is
// read at the output's own position (the same step).
func TestInputSelectionSameBlock(t *testing.T) {
	const B = 2
	h := newSelectionHost(B, ir.OpCopy, []ir.BlockID{B}, nil)
	feedPath(h, 1, B, B)
	if err := h.startOutput(3); err != nil {
		t.Fatal(err)
	}
	if got := h.cur.inPos[0]; got != 3 {
		t.Errorf("input position = %d, want 3", got)
	}
}

// TestPhiSelectionByPredecessor reproduces the paper's Fig. 4b hazard: the
// phi must select the slot matching the block the path arrived from, never
// first-come-first-served. Path ABDACD: the phi in D selects the B-slot at
// position 3 and the C-slot at position 6.
func TestPhiSelectionByPredecessor(t *testing.T) {
	const A, B, C, D = 1, 2, 3, 4
	h := newSelectionHost(D, ir.OpPhi,
		[]ir.BlockID{B, C}, // x1 defined in B, x2 in C
		[]ir.BlockID{B, C}) // slot 0 taken when arriving from B, slot 1 from C
	feedPath(h, A, B, D, A, C, D)

	if err := h.startOutput(3); err != nil {
		t.Fatal(err)
	}
	if h.cur.inPos[0] != 2 || h.cur.inPos[1] != -1 {
		t.Errorf("pos 3: inPos = %v, want [2 -1] (B-slot)", h.cur.inPos)
	}
	h.cur = nil
	if err := h.startOutput(6); err != nil {
		t.Fatal(err)
	}
	if h.cur.inPos[0] != -1 || h.cur.inPos[1] != 5 {
		t.Errorf("pos 6: inPos = %v, want [-1 5] (C-slot)", h.cur.inPos)
	}
}

// TestPhiNeverSelectsOwnVisit: a phi selecting a producer in its own block
// (the loop-carried case) must take the *previous* visit's bag, not the one
// being produced in the current visit.
func TestPhiSelectsPreviousVisit(t *testing.T) {
	const Entry, Body = 0, 1
	h := newSelectionHost(Body, ir.OpPhi,
		[]ir.BlockID{Entry, Body},
		[]ir.BlockID{Entry, Body})
	feedPath(h, Entry, Body, Body, Body)

	// First visit (position 2): arrived from Entry.
	if err := h.startOutput(2); err != nil {
		t.Fatal(err)
	}
	if h.cur.inPos[0] != 1 || h.cur.inPos[1] != -1 {
		t.Errorf("pos 2: inPos = %v, want [1 -1]", h.cur.inPos)
	}
	// Third visit (position 4): arrived from Body; must read position 3,
	// not 4 (its own, not-yet-produced bag).
	h.cur = nil
	if err := h.startOutput(4); err != nil {
		t.Fatal(err)
	}
	if h.cur.inPos[0] != -1 || h.cur.inPos[1] != 3 {
		t.Errorf("pos 4: inPos = %v, want [-1 3]", h.cur.inPos)
	}
}

// TestSelectionErrors: outputs scheduled before their producers' blocks
// ever ran are coordination bugs and must fail loudly.
func TestSelectionErrors(t *testing.T) {
	h := newSelectionHost(2, ir.OpCopy, []ir.BlockID{5}, nil)
	feedPath(h, 1, 2)
	if err := h.startOutput(2); err == nil {
		t.Error("missing producer occurrence not detected")
	}
	// Phi with no slot for the incoming predecessor.
	h2 := newSelectionHost(2, ir.OpPhi, []ir.BlockID{3}, []ir.BlockID{3})
	feedPath(h2, 1, 2)
	if err := h2.startOutput(2); err == nil {
		t.Error("phi without a matching predecessor slot not detected")
	}
}

// TestConditionCaptureValidation: condition operators must produce a
// boolean; scalar typing is dynamic, so this is a runtime error surfaced
// through the coordinator.
func TestConditionCaptureValidation(t *testing.T) {
	g := compile(t, `i = 1
while (i) {
  i = 0
}`)
	cl, err := cluster.New(cluster.FastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = Execute(g, store.NewMemStore(), cl, DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "want bool") {
		t.Errorf("Execute error = %v, want non-bool condition error", err)
	}
}
