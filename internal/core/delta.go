package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/mitos-project/mitos/internal/lang"
	"github.com/mitos-project/mitos/internal/val"
)

// Delta/workset iterations (Ewen et al., "Spinning Fast Iterative Data
// Flows"): a deltaMerge operator holds the solution set of an iterative
// computation as persistent, hash-partitioned keyed state, so each loop
// step processes only the changed elements (the workset) instead of
// re-deriving the full bag. The state lives outside the bag machinery in
// per-(operator, instance) solutionStores owned by the runtime; the bags
// flowing through the dataflow are the per-step deltas, which keep their
// ordinary bag identifiers so pipelining, hoisting, combiners, chaining,
// and execution templates all apply unchanged.

// DeltaStep reports what one loop step did to one deltaMerge's solution
// set, aggregated across instances in Result.DeltaSteps.
type DeltaStep struct {
	// Pos is the execution-path position of the step's deltaMerge bag.
	Pos int
	// In counts raw delta elements received (the workset size).
	In int64
	// Changed counts keys whose merged value was new or changed — the
	// elements emitted as the next workset.
	Changed int64
	// Touched counts index operations: folded candidates merged, plus (in
	// the -delta=off ablation) the full per-step index rebuild.
	Touched int64
	// Elements and Bytes are the solution set's size after the step.
	Elements int64
	Bytes    int64
	// DurNS is the wall time from the previous step's merge (or store
	// creation) to this step's merge completing — the per-step cadence.
	DurNS int64
}

// stateKey identifies one instance's partition of one deltaMerge's state.
type stateKey struct {
	op   int
	inst int
}

// undoEntry records how to roll one key back across one applied step:
// either the key was inserted (present=false) or overwritten (present=true
// with the previous value).
type undoEntry struct {
	key     val.Value
	old     val.Value
	present bool
}

type undoStep struct {
	pos  int
	ents []undoEntry
}

// solutionStore is one instance's partition of a deltaMerge solution set.
// The deltaMerge host is the only writer (apply); solution hosts read
// concurrently (snapshot) — with pipelining the merge may run steps ahead
// of an in-loop reader, so when the plan marks StateJournal the store keeps
// per-step undo records and reconstructs the step a reader targets.
type solutionStore struct {
	mu      sync.Mutex
	idx     *val.Map[val.Value]
	seeded  bool
	applied int   // path position of the last merged step
	bytes   int64 // approximate encoded size of the index contents
	journal bool
	undo    []undoStep // applied steps' undo records, ascending position
	readers []int      // per attached solution reader: last targeted position
	steps   []DeltaStep
	created time.Time
	lastOp  time.Time
}

// stateStore returns (creating on first use) the state partition of
// deltaMerge operator op for instance inst. Both the deltaMerge host and
// any solution hosts resolve their store here at Open; instance co-location
// (i%machines placement on both backends) guarantees they meet in the same
// process.
func (rt *runtime) stateStore(op *PlanOp, inst int) *solutionStore {
	rt.stateMu.Lock()
	defer rt.stateMu.Unlock()
	if rt.stateStores == nil {
		rt.stateStores = make(map[stateKey]*solutionStore)
	}
	k := stateKey{op: op.ID, inst: inst}
	s := rt.stateStores[k]
	if s == nil {
		s = &solutionStore{
			idx:     val.NewMap[val.Value](16),
			journal: op.StateJournal,
			created: time.Now(),
		}
		rt.stateStores[k] = s
	}
	return s
}

// isSeeded reports whether the seed bag has been ingested.
func (s *solutionStore) isSeeded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seeded
}

// addReader registers one solution reader and returns its slot, used to
// garbage-collect undo records all readers have moved past.
func (s *solutionStore) addReader() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readers = append(s.readers, 0)
	return len(s.readers) - 1
}

// apply merges one step into the state: the (already key-folded) seed is
// ingested on the first step, then each folded delta candidate is merged
// against the indexed value with f. It returns the (key, merged) pairs that
// changed — the caller emits them AFTER this returns, outside the lock,
// because emitting can block on backpressure while a solution reader holds
// (or waits for) the lock. incremental=false is the -delta=off ablation: the
// whole index is rebuilt from scratch every step, modeling full
// re-derivation, before the same merge runs — outputs are identical, only
// the per-step cost changes from O(|delta|) to O(|solution|).
func (s *solutionStore) apply(pos int, seed, cand *val.Map[val.Value], f *lang.UDF, incremental bool, in int64) ([]val.Value, DeltaStep, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ents []undoEntry
	var touched int64
	if !s.seeded {
		if seed != nil {
			seed.Range(func(k, v val.Value) bool {
				s.idx.Put(k, v)
				s.bytes += int64(val.EncodedSize(k) + val.EncodedSize(v))
				if s.journal {
					ents = append(ents, undoEntry{key: k})
				}
				touched++
				return true
			})
		}
		s.seeded = true
	}
	if !incremental {
		fresh := val.NewMap[val.Value](16)
		s.idx.Range(func(k, v val.Value) bool {
			fresh.Put(k, v)
			touched++
			return true
		})
		s.idx = fresh
	}
	var changed []val.Value
	var udfErr error
	cand.Range(func(k, v val.Value) bool {
		touched++
		old, ok := s.idx.Get(k)
		if !ok {
			s.idx.Put(k, v)
			s.bytes += int64(val.EncodedSize(k) + val.EncodedSize(v))
			changed = append(changed, val.Pair(k, v))
			if s.journal {
				ents = append(ents, undoEntry{key: k})
			}
			return true
		}
		merged, err := f.Call(old, v)
		if err != nil {
			udfErr = err
			return false
		}
		if !merged.Equal(old) {
			s.idx.Put(k, merged)
			s.bytes += int64(val.EncodedSize(merged) - val.EncodedSize(old))
			changed = append(changed, val.Pair(k, merged))
			if s.journal {
				ents = append(ents, undoEntry{key: k, old: old, present: true})
			}
		}
		return true
	})
	if udfErr != nil {
		return nil, DeltaStep{}, udfErr
	}
	if s.journal {
		s.undo = append(s.undo, undoStep{pos: pos, ents: ents})
	}
	s.applied = pos
	now := time.Now()
	since := s.lastOp
	if since.IsZero() {
		since = s.created
	}
	s.lastOp = now
	step := DeltaStep{
		Pos:      pos,
		In:       in,
		Changed:  int64(len(changed)),
		Touched:  touched,
		Elements: int64(s.idx.Len()),
		Bytes:    s.bytes,
		DurNS:    now.Sub(since).Nanoseconds(),
	}
	s.steps = append(s.steps, step)
	return changed, step, nil
}

// snapshot returns the full solution set as it stood after step target (0 =
// before any step). When the merge has pipelined past target, the undo
// journal rolls the overlayed keys back. The caller emits the returned
// pairs outside the lock (see apply).
func (s *solutionStore) snapshot(target, reader int) ([]val.Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reader >= 0 && reader < len(s.readers) && target > s.readers[reader] {
		s.readers[reader] = target
	}
	out := make([]val.Value, 0, s.idx.Len())
	if s.applied <= target {
		s.idx.Range(func(k, v val.Value) bool {
			out = append(out, val.Pair(k, v))
			return true
		})
		s.gcUndo()
		return out, nil
	}
	if !s.journal {
		return nil, fmt.Errorf("state advanced to step %d past solution read at %d without a journal (plan bug)", s.applied, target)
	}
	// Overlay: for every key touched after target, its value as of target
	// — the FIRST undo record at a position > target wins.
	type rollback struct {
		old     val.Value
		present bool
	}
	ov := val.NewMap[rollback](16)
	for _, st := range s.undo {
		if st.pos <= target {
			continue
		}
		for _, e := range st.ents {
			if _, ok := ov.Get(e.key); !ok {
				ov.Put(e.key, rollback{old: e.old, present: e.present})
			}
		}
	}
	s.idx.Range(func(k, v val.Value) bool {
		if r, ok := ov.Get(k); ok {
			if r.present {
				out = append(out, val.Pair(k, r.old))
			}
			return true
		}
		out = append(out, val.Pair(k, v))
		return true
	})
	s.gcUndo()
	return out, nil
}

// gcUndo drops undo steps every reader has targeted past. Called with mu
// held.
func (s *solutionStore) gcUndo() {
	if len(s.undo) == 0 || len(s.readers) == 0 {
		return
	}
	min := s.readers[0]
	for _, t := range s.readers[1:] {
		if t < min {
			min = t
		}
	}
	keep := 0
	for keep < len(s.undo) && s.undo[keep].pos <= min {
		keep++
	}
	if keep > 0 {
		s.undo = append(s.undo[:0], s.undo[keep:]...)
	}
}

// summary returns this partition's final size and per-step records. Called
// after the job finished (no concurrent apply), but locks anyway.
func (s *solutionStore) summary() (elements, bytes int64, steps []DeltaStep) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.idx.Len()), s.bytes, s.steps
}

// deltaSummary aggregates all state partitions of the runtime: totals over
// every step, final solution-set size, and the per-step series merged
// across instances (sums per position; DurNS is the slowest instance).
func (rt *runtime) deltaSummary() (in, changed, touched, elements, bytes int64, steps []DeltaStep) {
	rt.stateMu.Lock()
	stores := make([]*solutionStore, 0, len(rt.stateStores))
	for _, s := range rt.stateStores {
		stores = append(stores, s)
	}
	rt.stateMu.Unlock()
	byPos := make(map[int]*DeltaStep)
	for _, s := range stores {
		el, by, sts := s.summary()
		elements += el
		bytes += by
		for _, st := range sts {
			in += st.In
			changed += st.Changed
			touched += st.Touched
			m := byPos[st.Pos]
			if m == nil {
				m = &DeltaStep{Pos: st.Pos}
				byPos[st.Pos] = m
			}
			m.In += st.In
			m.Changed += st.Changed
			m.Touched += st.Touched
			m.Elements += st.Elements
			m.Bytes += st.Bytes
			if st.DurNS > m.DurNS {
				m.DurNS = st.DurNS
			}
		}
	}
	steps = make([]DeltaStep, 0, len(byPos))
	for _, m := range byPos {
		steps = append(steps, *m)
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i].Pos < steps[j].Pos })
	return in, changed, touched, elements, bytes, steps
}

// beginDeltaMerge prepares one step's run: candidate fold table, and — on
// this instance's first step only — the seed fold table. Later steps skip
// the seed slot entirely (its selected bag stays buffered; the low-water GC
// retires it as the input position advances).
func (h *host) beginDeltaMerge(run *outputRun) {
	run.hash = val.NewMap[val.Value](16)
	if h.state.isSeeded() {
		run.slotDone[0] = true
		h.seedStale = true
	} else {
		run.seedHash = val.NewMap[val.Value](16)
	}
}

// foldInto folds streaming (key, value) pairs into a per-run table with the
// operator's merge function — the same pre-aggregation shape as
// reduceByKey, so a step's delta is merged in one index pass.
func (h *host) foldInto(m *val.Map[val.Value], x val.Value) error {
	k, v, err := pairParts(x, h.op.Instr.Var)
	if err != nil {
		return err
	}
	var udfErr error
	m.Update(k, func(old val.Value, present bool) val.Value {
		if !present {
			return v
		}
		y, err := h.op.Instr.F.Call(old, v)
		if err != nil && udfErr == nil {
			udfErr = err
		}
		return y
	})
	if udfErr != nil {
		return fmt.Errorf("core: %s: %w", h.op.Instr.Var, udfErr)
	}
	return nil
}

// pumpDeltaMerge runs one step: fold the seed (first step only) and the
// delta as they stream in, then — once both bags are complete — merge the
// candidates into the state store in one atomic step and emit the changed
// pairs as the next workset.
func (h *host) pumpDeltaMerge(run *outputRun) (bool, error) {
	if !run.slotDone[0] {
		for _, x := range h.drainSlot(run, 0) {
			if err := h.foldInto(run.seedHash, x); err != nil {
				return false, err
			}
		}
		if h.slotExhausted(run, 0) {
			run.slotDone[0] = true
		}
	}
	if !run.slotDone[1] {
		for _, x := range h.drainSlot(run, 1) {
			run.count++
			if err := h.foldInto(run.hash, x); err != nil {
				return false, err
			}
		}
		if h.slotExhausted(run, 1) {
			run.slotDone[1] = true
		}
	}
	if !allDone(run) {
		return false, nil
	}
	changed, step, err := h.state.apply(run.pos, run.seedHash, run.hash, h.op.Instr.F, h.rt.opts.Delta, run.count)
	if err != nil {
		return false, fmt.Errorf("core: %s: %w", h.op.Instr.Var, err)
	}
	h.deltaIn.Add(step.In)
	h.deltaChanged.Add(step.Changed)
	h.deltaTouched.Add(step.Touched)
	h.solutionElements.Max(step.Elements)
	h.solutionBytes.Max(step.Bytes)
	for _, y := range changed {
		h.emit(run, y)
	}
	return true, nil
}

// pumpSolution dumps the full solution set of its deltaMerge. The rewired
// input edge carries the deltaMerge's per-step delta; those elements are
// not the output — the edge exists so bag selection names WHICH step the
// dump must reflect, and end-of-bag proves the store has merged it. A
// target of 0 (input slot unused) means the deltaMerge has not run on the
// path yet: the solution set at that point is empty (or, mid-pipeline,
// whatever the journal rolls back to).
func (h *host) pumpSolution(run *outputRun) (bool, error) {
	target := 0
	if run.inPos[0] > 0 {
		h.drainSlot(run, 0)
		if !h.slotExhausted(run, 0) {
			return false, nil
		}
		run.slotDone[0] = true
		target = run.inPos[0]
	}
	ents, err := h.state.snapshot(target, h.readerSlot)
	if err != nil {
		return false, fmt.Errorf("core: %s: %w", h.op.Instr.Var, err)
	}
	for _, e := range ents {
		h.emit(run, e)
	}
	return true, nil
}

// startSolution selects the deltaMerge step a solution output at pos
// reflects: the latest occurrence of the deltaMerge's block — bounded by
// pos-1 when the deltaMerge sits later in the same block, since the
// solution executes before it within the visit. No occurrence means the
// deltaMerge has not run yet: the slot is unused, like a phi's unselected
// inputs.
func (h *host) startSolution(run *outputRun, pos int) {
	src := h.op.Inputs[0].Producer
	limit := pos
	if src.Block == h.op.Block && src.ID > h.op.ID {
		limit = pos - 1
	}
	if p := h.latestOcc(src.Block, limit); p > 0 {
		run.inPos[0] = p
	} else {
		run.inPos[0] = -1
		run.slotDone[0] = true
	}
}
