package core

import (
	"testing"

	"github.com/mitos-project/mitos/internal/cluster"
	"github.com/mitos-project/mitos/internal/ir"
	"github.com/mitos-project/mitos/internal/lang"
	"github.com/mitos-project/mitos/internal/store"
)

// benchStepLoop executes a 100-step loop on a zero-delay 8-machine
// cluster — the engine-only per-step-overhead measurement of the Fig. 7
// step loop, the number the execution-template cache exists to shrink.
func benchStepLoop(b *testing.B, templates bool) {
	prog, err := lang.Parse(stepLoopSrc(100))
	if err != nil {
		b.Fatal(err)
	}
	g, err := ir.CompileToSSA(prog)
	if err != nil {
		b.Fatal(err)
	}
	cfg := cluster.FastConfig(8)
	opts := DefaultOptions()
	opts.Templates = templates
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl, err := cluster.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Execute(g, store.NewMemStore(), cl, opts); err != nil {
			b.Fatal(err)
		}
		cl.Close()
	}
}

func BenchmarkStepLoopTemplatesOn(b *testing.B)  { benchStepLoop(b, true) }
func BenchmarkStepLoopTemplatesOff(b *testing.B) { benchStepLoop(b, false) }
