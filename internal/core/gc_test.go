package core

import (
	"fmt"
	"testing"

	"github.com/mitos-project/mitos/internal/cluster"
	"github.com/mitos-project/mitos/internal/store"
	"github.com/mitos-project/mitos/internal/val"
)

// TestBufferedBagsBoundedByGC runs loops of very different lengths and
// checks that the per-host input-bag high-water mark does not grow with
// the iteration count: the monotone input-position rule garbage-collects
// superseded bags (paper Sec. 5.2.4).
func TestBufferedBagsBoundedByGC(t *testing.T) {
	run := func(iters int) int64 {
		src := fmt.Sprintf(`
acc = readFile("seed")
i = 0
while (i < %d) {
  acc = acc.map(x => (x.0, x.1 + 1)).reduceByKey((a, b) => a + b)
  i = i + 1
}
acc.writeFile("out")
`, iters)
		g := compile(t, src)
		cl, err := cluster.New(cluster.FastConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		st := store.NewMemStore()
		st.WriteDataset("seed", []val.Value{
			val.Pair(val.Str("a"), val.Int(0)),
			val.Pair(val.Str("b"), val.Int(0)),
		})
		res, err := Execute(g, st, cl, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxBufferedBags
	}
	short, long := run(5), run(80)
	if long > short*4 {
		t.Errorf("buffered bags grow with iterations: %d @5 iters vs %d @80 iters", short, long)
	}
	if long == 0 {
		t.Error("high-water mark not recorded")
	}
}

// TestNonPipelinedStrictOrder: with pipelining off, no operator may start
// an iteration step before every operator finished the previous one. We
// observe this through the coordinator: in non-pipelined mode the number
// of barriers equals the number of path positions after the first.
func TestNonPipelinedStrictOrder(t *testing.T) {
	src := `
i = 0
while (i < 6) {
  i = i + 1
}
newBag(i).writeFile("out")
`
	g := compile(t, src)
	cl, err := cluster.New(cluster.FastConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st := store.NewMemStore()
	res, err := Execute(g, st, cl, Options{Pipelining: false, Hoisting: true})
	if err != nil {
		t.Fatal(err)
	}
	barriers := cl.Stats().Barriers
	if want := int64(res.Steps - 1); barriers != want {
		t.Errorf("barriers = %d, want %d (one per step boundary)", barriers, want)
	}
	out, _ := st.ReadDataset("out")
	if len(out) != 1 || out[0].AsInt() != 6 {
		t.Errorf("out = %v", out)
	}
}

// TestPipelinedNoBarriers: the pipelined coordinator never uses cluster
// barriers; control flow advances through asynchronous broadcasts only.
func TestPipelinedNoBarriers(t *testing.T) {
	src := `
i = 0
while (i < 6) {
  i = i + 1
}
newBag(i).writeFile("out")
`
	g := compile(t, src)
	cl, err := cluster.New(cluster.FastConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st := store.NewMemStore()
	if _, err := Execute(g, st, cl, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if got := cl.Stats().Barriers; got != 0 {
		t.Errorf("pipelined run used %d barriers", got)
	}
	if got := cl.Stats().CtrlMessages; got == 0 {
		t.Error("no control messages recorded; CFM broadcasts missing")
	}
}
