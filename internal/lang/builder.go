package lang

import "github.com/mitos-project/mitos/internal/val"

// This file provides a fluent builder API for constructing Program ASTs from
// Go code — the second front end next to the script parser. It produces the
// exact same AST the parser does, so everything downstream (Check, lowering,
// SSA, the dataflow translator) is shared.
//
// Example:
//
//	b := lang.NewBuilder()
//	b.Assign("day", lang.IntLit(1))
//	b.DoWhile(func(body *lang.Builder) {
//		body.Assign("visits", lang.ReadFile(lang.Concat(lang.StrLit("log"), lang.Var("day"))))
//		body.Assign("day", lang.Add(lang.Var("day"), lang.IntLit(1)))
//	}, lang.Leq(lang.Var("day"), lang.IntLit(365)))
//	prog := b.Program()

// Builder accumulates statements of a program or block.
type Builder struct {
	stmts []Stmt
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return &Builder{} }

// Program returns the accumulated statements as a Program.
func (b *Builder) Program() *Program { return &Program{Stmts: b.stmts} }

// Assign appends `name = rhs`.
func (b *Builder) Assign(name string, rhs Expr) *Builder {
	b.stmts = append(b.stmts, &AssignStmt{Name: name, RHS: rhs})
	return b
}

// If appends an if statement; then and els populate the branches (els may
// be nil for no else branch).
func (b *Builder) If(cond Expr, then func(*Builder), els func(*Builder)) *Builder {
	s := &IfStmt{Cond: cond}
	tb := NewBuilder()
	then(tb)
	s.Then = tb.stmts
	if els != nil {
		eb := NewBuilder()
		els(eb)
		s.Else = eb.stmts
	}
	b.stmts = append(b.stmts, s)
	return b
}

// While appends a pre-test loop.
func (b *Builder) While(cond Expr, body func(*Builder)) *Builder {
	bb := NewBuilder()
	body(bb)
	b.stmts = append(b.stmts, &WhileStmt{Cond: cond, Body: bb.stmts})
	return b
}

// DoWhile appends a post-test loop: the body runs once before cond is
// first evaluated.
func (b *Builder) DoWhile(body func(*Builder), cond Expr) *Builder {
	bb := NewBuilder()
	body(bb)
	b.stmts = append(b.stmts, &WhileStmt{Cond: cond, Body: bb.stmts, PostTest: true})
	return b
}

// For appends counted-loop sugar over the inclusive range [from, to].
func (b *Builder) For(name string, from, to Expr, body func(*Builder)) *Builder {
	bb := NewBuilder()
	body(bb)
	b.stmts = append(b.stmts, &ForStmt{Var: name, From: from, To: to, Body: bb.stmts})
	return b
}

// WriteFile appends a `bag.writeFile(name)` statement.
func (b *Builder) WriteFile(bag, name Expr) *Builder {
	b.stmts = append(b.stmts, &ExprStmt{X: &Method{Recv: bag, Name: "writeFile", Args: []Expr{name}}})
	return b
}

// Expression constructors.

// IntLit returns an integer literal expression.
func IntLit(i int64) Expr { return &Lit{V: val.Int(i)} }

// FloatLit returns a float literal expression.
func FloatLit(f float64) Expr { return &Lit{V: val.Float(f)} }

// StrLit returns a string literal expression.
func StrLit(s string) Expr { return &Lit{V: val.Str(s)} }

// BoolLit returns a boolean literal expression.
func BoolLit(b bool) Expr { return &Lit{V: val.Bool(b)} }

// LitOf returns a literal expression holding v.
func LitOf(v val.Value) Expr { return &Lit{V: v} }

// Var references the variable name.
func Var(name string) Expr { return &Ident{Name: name} }

func bin(op TokKind, x, y Expr) Expr { return &Binary{Op: op, X: x, Y: y} }

// Add returns x + y (numeric addition or string concatenation).
func Add(x, y Expr) Expr { return bin(TokPlus, x, y) }

// Concat is Add under a name that reads better for strings.
func Concat(x, y Expr) Expr { return bin(TokPlus, x, y) }

// Sub returns x - y.
func Sub(x, y Expr) Expr { return bin(TokMinus, x, y) }

// Mul returns x * y.
func Mul(x, y Expr) Expr { return bin(TokStar, x, y) }

// Div returns x / y.
func Div(x, y Expr) Expr { return bin(TokSlash, x, y) }

// Mod returns x % y.
func Mod(x, y Expr) Expr { return bin(TokPercent, x, y) }

// Eq returns x == y.
func Eq(x, y Expr) Expr { return bin(TokEq, x, y) }

// Neq returns x != y.
func Neq(x, y Expr) Expr { return bin(TokNeq, x, y) }

// Lt returns x < y.
func Lt(x, y Expr) Expr { return bin(TokLt, x, y) }

// Leq returns x <= y.
func Leq(x, y Expr) Expr { return bin(TokLeq, x, y) }

// Gt returns x > y.
func Gt(x, y Expr) Expr { return bin(TokGt, x, y) }

// Geq returns x >= y.
func Geq(x, y Expr) Expr { return bin(TokGeq, x, y) }

// And returns x && y.
func And(x, y Expr) Expr { return bin(TokAnd, x, y) }

// Or returns x || y.
func Or(x, y Expr) Expr { return bin(TokOr, x, y) }

// Not returns !x.
func Not(x Expr) Expr { return &Unary{Op: TokNot, X: x} }

// Neg returns -x.
func Neg(x Expr) Expr { return &Unary{Op: TokMinus, X: x} }

// CallFn returns a builtin call fn(args...).
func CallFn(fn string, args ...Expr) Expr { return &Call{Fn: fn, Args: args} }

// ReadFile returns readFile(name): a bag read from the dataset store.
func ReadFile(name Expr) Expr { return CallFn("readFile", name) }

// NewBag returns newBag(x): a one-element bag holding the scalar x.
func NewBag(x Expr) Expr { return CallFn("newBag", x) }

// EmptyBag returns empty(): the empty bag.
func EmptyBag() Expr { return CallFn("empty") }

// Only returns only(b): the single element of a singleton bag, as a scalar.
func Only(b Expr) Expr { return CallFn("only", b) }

// Cond returns the eager ternary cond(c, a, b): a if c is true, else b.
func Cond(c, a, b Expr) Expr { return CallFn("cond", c, a, b) }

// TupleOf returns the tuple expression (elems...).
func TupleOf(elems ...Expr) Expr { return &TupleExpr{Elems: elems} }

// FieldOf returns x.index.
func FieldOf(x Expr, index int) Expr { return &Field{X: x, Index: index} }

// Fn returns a lambda with the given parameters and body.
func Fn(params []string, body Expr) Expr { return &Lambda{Params: params, Body: body} }

// Fn1 returns a single-parameter lambda.
func Fn1(param string, body Expr) Expr { return Fn([]string{param}, body) }

// Fn2 returns a two-parameter lambda.
func Fn2(p1, p2 string, body Expr) Expr { return Fn([]string{p1, p2}, body) }

// Native returns a native Go UDF expression usable wherever a lambda is.
func Native(label string, arity int, fn func(args []val.Value) val.Value) Expr {
	return &GoFunc{Label: label, Arity: arity, Fn: fn}
}

// Bag method helpers.

func method(recv Expr, name string, args ...Expr) Expr {
	return &Method{Recv: recv, Name: name, Args: args}
}

// MapBag returns recv.map(f).
func MapBag(recv, f Expr) Expr { return method(recv, "map", f) }

// FlatMapBag returns recv.flatMap(f). The UDF returns a tuple whose fields
// are emitted as individual elements.
func FlatMapBag(recv, f Expr) Expr { return method(recv, "flatMap", f) }

// FilterBag returns recv.filter(p).
func FilterBag(recv, p Expr) Expr { return method(recv, "filter", p) }

// JoinBags returns a.join(b): pairs joined on their first field, producing
// (key, leftValue, rightValue) triples.
func JoinBags(a, b Expr) Expr { return method(a, "join", b) }

// ReduceByKey returns recv.reduceByKey(f) over (key, value) pairs.
func ReduceByKey(recv, f Expr) Expr { return method(recv, "reduceByKey", f) }

// ReduceBag returns recv.reduce(f): a singleton bag with the fold of all
// elements (empty input produces an empty bag).
func ReduceBag(recv, f Expr) Expr { return method(recv, "reduce", f) }

// SumBag returns recv.sum().
func SumBag(recv Expr) Expr { return method(recv, "sum") }

// CountBag returns recv.count().
func CountBag(recv Expr) Expr { return method(recv, "count") }

// DistinctBag returns recv.distinct().
func DistinctBag(recv Expr) Expr { return method(recv, "distinct") }

// UnionBags returns a.union(b).
func UnionBags(a, b Expr) Expr { return method(a, "union", b) }

// DeltaMergeBags returns seed.deltaMerge(delta, f): the workset-iteration
// operator. It folds delta into an indexed solution set seeded once from
// seed, merging values by key with f (which must be commutative and
// associative), and produces the (key, value) pairs that changed — the
// next workset.
func DeltaMergeBags(seed, delta, f Expr) Expr { return method(seed, "deltaMerge", delta, f) }

// SolutionBag returns recv.solution(): the full solution set held by the
// deltaMerge that produced recv.
func SolutionBag(recv Expr) Expr { return method(recv, "solution") }

// CrossBags returns a.cross(b): all (a, b) pairs.
func CrossBags(a, b Expr) Expr { return method(a, "cross", b) }
