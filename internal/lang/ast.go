package lang

import (
	"github.com/mitos-project/mitos/internal/val"
)

// Program is a parsed (or programmatically built) imperative program.
type Program struct {
	Stmts []Stmt
}

// Stmt is an imperative statement.
type Stmt interface {
	stmtNode()
	// StmtPos returns the statement's source position (zero for built ASTs).
	StmtPos() Pos
}

// AssignStmt assigns the value of RHS to the variable Name. Variables may be
// assigned more than once; SSA conversion in internal/ir introduces the
// versioning.
type AssignStmt struct {
	Pos  Pos
	Name string
	RHS  Expr
}

// IfStmt is an if/else statement. Else may be empty.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// WhileStmt is a pre-test loop (while) or post-test loop (do..while) when
// PostTest is set.
type WhileStmt struct {
	Pos      Pos
	Cond     Expr
	Body     []Stmt
	PostTest bool
}

// ForStmt is counted-loop sugar: `for v = from to to { body }` iterates v
// over the inclusive range. It desugars to assignments and a while loop
// during lowering.
type ForStmt struct {
	Pos      Pos
	Var      string
	From, To Expr
	Body     []Stmt
}

// ExprStmt evaluates an expression for its effect; the only effectful
// expressions are writeFile calls.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// BreakStmt exits the innermost enclosing loop. It must be the last
// statement of its block.
type BreakStmt struct {
	Pos Pos
}

// ContinueStmt jumps to the next iteration test of the innermost enclosing
// loop. It must be the last statement of its block.
type ContinueStmt struct {
	Pos Pos
}

func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ExprStmt) stmtNode()     {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// StmtPos returns the statement's source position.
func (s *AssignStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *IfStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *WhileStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *ForStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *ExprStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *BreakStmt) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *ContinueStmt) StmtPos() Pos { return s.Pos }

// Expr is an expression. Expressions are either scalar-typed or bag-typed;
// the Check pass infers which (see Type).
type Expr interface {
	exprNode()
	// ExprPos returns the expression's source position (zero for built ASTs).
	ExprPos() Pos
}

// Lit is a literal scalar value.
type Lit struct {
	Pos Pos
	V   val.Value
}

// Ident references a variable.
type Ident struct {
	Pos  Pos
	Name string
}

// Unary is a unary operation: TokMinus (negation) or TokNot.
type Unary struct {
	Pos Pos
	Op  TokKind
	X   Expr
}

// Binary is a binary operation over scalars.
type Binary struct {
	Pos  Pos
	Op   TokKind
	X, Y Expr
}

// Call invokes a top-level builtin: readFile, newBag, empty, only, abs, str,
// num, min, max, fst, snd.
type Call struct {
	Pos  Pos
	Fn   string
	Args []Expr
}

// Method invokes a bag operation on Recv: map, flatMap, filter, join,
// reduceByKey, reduce, sum, count, distinct, union, cross, writeFile.
type Method struct {
	Pos  Pos
	Recv Expr
	Name string
	Args []Expr
}

// Lambda is an anonymous function used as a UDF argument of bag operations.
// Its body may reference only its own parameters (enforced by Check): in the
// dataflow model all other data must arrive through bag edges.
type Lambda struct {
	Pos    Pos
	Params []string
	Body   Expr
}

// TupleExpr constructs a tuple value, e.g. `(x, 1)`.
type TupleExpr struct {
	Pos   Pos
	Elems []Expr
}

// Field selects tuple field Index of X, written `x.0`, `x.1`, ...
type Field struct {
	Pos   Pos
	X     Expr
	Index int
}

// GoFunc is a native Go UDF, available only through the builder API (it has
// no script syntax). Label is used for printing and debugging. Fn receives
// the lambda arguments and returns the result.
type GoFunc struct {
	Pos   Pos
	Label string
	Arity int
	Fn    func(args []val.Value) val.Value
}

func (*Lit) exprNode()       {}
func (*Ident) exprNode()     {}
func (*Unary) exprNode()     {}
func (*Binary) exprNode()    {}
func (*Call) exprNode()      {}
func (*Method) exprNode()    {}
func (*Lambda) exprNode()    {}
func (*TupleExpr) exprNode() {}
func (*Field) exprNode()     {}
func (*GoFunc) exprNode()    {}

// ExprPos returns the expression's source position.
func (e *Lit) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Ident) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Unary) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Binary) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Call) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Method) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Lambda) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *TupleExpr) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Field) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *GoFunc) ExprPos() Pos { return e.Pos }
