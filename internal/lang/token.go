// Package lang implements the imperative front end of Mitos: a small
// data-analytics language with scalable collections ("bags") and ordinary
// imperative control flow (while, do..while, for, if/else, arbitrarily
// nested).
//
// The paper obtains the user program's abstract syntax tree through Scala
// macros; here the equivalent information comes from parsing a script (see
// Parse) or from the programmatic builder API (see builder.go), both of
// which produce the same *Program AST that the compiler in internal/ir
// consumes.
package lang

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokString
	// Keywords.
	TokIf
	TokElse
	TokWhile
	TokDo
	TokFor
	TokTo
	TokTrue
	TokFalse
	TokBreak
	TokContinue
	// Punctuation and operators.
	TokAssign  // =
	TokLParen  // (
	TokRParen  // )
	TokLBrace  // {
	TokRBrace  // }
	TokComma   // ,
	TokDot     // .
	TokArrow   // =>
	TokPlus    // +
	TokMinus   // -
	TokStar    // *
	TokSlash   // /
	TokPercent // %
	TokEq      // ==
	TokNeq     // !=
	TokLt      // <
	TokLeq     // <=
	TokGt      // >
	TokGeq     // >=
	TokAnd     // &&
	TokOr      // ||
	TokNot     // !
	TokSemi    // ; (optional statement separator)
)

var tokNames = map[TokKind]string{
	TokEOF: "end of input", TokIdent: "identifier", TokInt: "integer",
	TokFloat: "float", TokString: "string",
	TokIf: "'if'", TokElse: "'else'", TokWhile: "'while'", TokDo: "'do'",
	TokFor: "'for'", TokTo: "'to'", TokTrue: "'true'", TokFalse: "'false'",
	TokBreak: "'break'", TokContinue: "'continue'",
	TokAssign: "'='", TokLParen: "'('", TokRParen: "')'", TokLBrace: "'{'",
	TokRBrace: "'}'", TokComma: "','", TokDot: "'.'", TokArrow: "'=>'",
	TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'", TokSlash: "'/'",
	TokPercent: "'%'", TokEq: "'=='", TokNeq: "'!='", TokLt: "'<'",
	TokLeq: "'<='", TokGt: "'>'", TokGeq: "'>='", TokAnd: "'&&'",
	TokOr: "'||'", TokNot: "'!'", TokSemi: "';'",
}

// String returns a human-readable name for the token kind.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", uint8(k))
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source text and position.
type Token struct {
	Kind TokKind
	Text string // raw text for idents and literals
	Pos  Pos
}

// Error is a front-end error carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
