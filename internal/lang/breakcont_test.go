package lang

import (
	"strings"
	"testing"
)

func TestParseBreakContinue(t *testing.T) {
	p := mustParse(t, `
i = 0
while (i < 10) {
  i = i + 1
  if (i == 3) {
    continue
  }
  if (i > 7) {
    break
  }
}
`)
	f := Format(p)
	if !strings.Contains(f, "break\n") || !strings.Contains(f, "continue\n") {
		t.Errorf("format lost break/continue:\n%s", f)
	}
	// Fixpoint.
	p2, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if Format(p2) != f {
		t.Error("format not a fixpoint with break/continue")
	}
}

func TestCheckBreakContinueRules(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"break outside loop", `break`, "outside a loop"},
		{"continue outside loop", `x = 1
continue`, "outside a loop"},
		{"break in if outside loop", `x = 1
if (x > 0) {
  break
}`, "outside a loop"},
		{"unreachable after break", `i = 0
while (i < 3) {
  break
  i = i + 1
}`, "unreachable"},
		{"unreachable after continue", `i = 0
while (i < 3) {
  i = i + 1
  continue
  i = i + 2
}`, "unreachable"},
		{"break ok", `i = 0
while (i < 3) {
  i = i + 1
  if (i == 2) {
    break
  }
}`, ""},
		{"continue in do-while ok", `i = 0
do {
  i = i + 1
  if (i == 2) {
    continue
  }
  x = 1
} while (i < 4)`, ""},
		{"assignment after possible break not definite", `i = 0
do {
  i = i + 1
  if (i == 1) {
    break
  }
  y = 5
} while (i < 3)
z = y`, "used before assignment"},
		{"assignment before break is definite in do-while", `i = 0
do {
  w = 7
  i = i + 1
  if (i == 1) {
    break
  }
} while (i < 3)
z = w`, "used before assignment"}, // conservative: any break voids the body's contribution
		{"both branches terminate", `i = 0
while (i < 3) {
  if (i == 0) {
    break
  } else {
    continue
  }
}`, ""},
		{"code after fully-terminating if", `i = 0
while (i < 3) {
  if (i == 0) {
    break
  } else {
    continue
  }
  i = i + 1
}`, "unreachable"},
		// A break belongs to the loop it appears in: it must not void the
		// definite-assignment contribution of a LATER do-while body at the
		// same nesting depth.
		{"break scoped to its own loop", `i = 0
while (i < 3) {
  i = i + 1
  if (i == 1) {
    break
  }
}
j = 0
do {
  y = 5
  j = j + 1
} while (j < 3)
z = y`, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := checkSrc(t, c.src)
			if c.wantSub == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error = %v, want substring %q", err, c.wantSub)
			}
		})
	}
}

func TestCheckBreakBindsInnermost(t *testing.T) {
	// Break in the inner loop must not count as a jump of the outer
	// do-while, whose body still contributes to definite assignment.
	src := `
i = 0
do {
  j = 0
  while (j < 5) {
    j = j + 1
    if (j == 2) {
      break
    }
  }
  k = j
  i = i + 1
} while (i < 3)
out = k
`
	if _, err := checkSrc(t, src); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}
