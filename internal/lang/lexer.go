package lang

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// lexer turns source text into tokens. It is only used by the parser.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

var keywords = map[string]TokKind{
	"if": TokIf, "else": TokElse, "while": TokWhile, "do": TokDo,
	"for": TokFor, "to": TokTo, "true": TokTrue, "false": TokFalse,
	"break": TokBreak, "continue": TokContinue,
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peekByteAt(i int) byte {
	if l.off+i >= len(l.src) {
		return 0
	}
	return l.src[l.off+i]
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.off < len(l.src); i++ {
		if l.src[l.off] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.off++
	}
}

// next returns the next token, skipping whitespace and comments
// (// to end of line).
func (l *lexer) next() (Token, error) {
	for {
		c := l.peekByte()
		switch {
		case c == 0:
			return Token{Kind: TokEOF, Pos: l.pos()}, nil
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '/' && l.peekByteAt(1) == '/':
			for l.peekByte() != 0 && l.peekByte() != '\n' {
				l.advance(1)
			}
		default:
			return l.scanToken()
		}
	}
}

func (l *lexer) scanToken() (Token, error) {
	pos := l.pos()
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.off
		for isIdentPart(l.peekByte()) {
			l.advance(1)
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	case c >= '0' && c <= '9':
		return l.scanNumber(pos)
	case c == '"':
		return l.scanString(pos)
	}
	// Operators, longest match first.
	two := ""
	if l.off+1 < len(l.src) {
		two = l.src[l.off : l.off+2]
	}
	switch two {
	case "=>":
		l.advance(2)
		return Token{Kind: TokArrow, Text: two, Pos: pos}, nil
	case "==":
		l.advance(2)
		return Token{Kind: TokEq, Text: two, Pos: pos}, nil
	case "!=":
		l.advance(2)
		return Token{Kind: TokNeq, Text: two, Pos: pos}, nil
	case "<=":
		l.advance(2)
		return Token{Kind: TokLeq, Text: two, Pos: pos}, nil
	case ">=":
		l.advance(2)
		return Token{Kind: TokGeq, Text: two, Pos: pos}, nil
	case "&&":
		l.advance(2)
		return Token{Kind: TokAnd, Text: two, Pos: pos}, nil
	case "||":
		l.advance(2)
		return Token{Kind: TokOr, Text: two, Pos: pos}, nil
	}
	single := map[byte]TokKind{
		'=': TokAssign, '(': TokLParen, ')': TokRParen, '{': TokLBrace,
		'}': TokRBrace, ',': TokComma, '.': TokDot, '+': TokPlus,
		'-': TokMinus, '*': TokStar, '/': TokSlash, '%': TokPercent,
		'<': TokLt, '>': TokGt, '!': TokNot, ';': TokSemi,
	}
	if k, ok := single[c]; ok {
		l.advance(1)
		return Token{Kind: k, Text: string(c), Pos: pos}, nil
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return Token{}, errf(pos, "unexpected character %q", r)
}

func (l *lexer) scanNumber(pos Pos) (Token, error) {
	start := l.off
	for isDigit(l.peekByte()) {
		l.advance(1)
	}
	isFloat := false
	if l.peekByte() == '.' && isDigit(l.peekByteAt(1)) {
		isFloat = true
		l.advance(1)
		for isDigit(l.peekByte()) {
			l.advance(1)
		}
	}
	if e := l.peekByte(); e == 'e' || e == 'E' {
		i := 1
		if s := l.peekByteAt(1); s == '+' || s == '-' {
			i = 2
		}
		if isDigit(l.peekByteAt(i)) {
			isFloat = true
			l.advance(i)
			for isDigit(l.peekByte()) {
				l.advance(1)
			}
		}
	}
	text := l.src[start:l.off]
	kind := TokInt
	if isFloat {
		kind = TokFloat
	}
	return Token{Kind: kind, Text: text, Pos: pos}, nil
}

func (l *lexer) scanString(pos Pos) (Token, error) {
	l.advance(1) // opening quote
	var b strings.Builder
	for {
		c := l.peekByte()
		switch c {
		case 0, '\n':
			return Token{}, errf(pos, "unterminated string literal")
		case '"':
			l.advance(1)
			return Token{Kind: TokString, Text: b.String(), Pos: pos}, nil
		case '\\':
			esc := l.peekByteAt(1)
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			default:
				return Token{}, errf(l.pos(), "unknown escape \\%c", esc)
			}
			l.advance(2)
		default:
			b.WriteByte(c)
			l.advance(1)
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || isDigit(c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
