package lang

import (
	"fmt"
	"strings"
)

// Format renders a Program as canonical script source. Parsing the result
// yields an equivalent AST (modulo positions); this is exercised by tests.
func Format(p *Program) string {
	var b strings.Builder
	for _, s := range p.Stmts {
		formatStmt(&b, s, 0)
	}
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch s := s.(type) {
	case *AssignStmt:
		b.WriteString(s.Name)
		b.WriteString(" = ")
		formatExpr(b, s.RHS, 0)
		b.WriteByte('\n')
	case *IfStmt:
		b.WriteString("if (")
		formatExpr(b, s.Cond, 0)
		b.WriteString(") {\n")
		for _, t := range s.Then {
			formatStmt(b, t, depth+1)
		}
		indent(b, depth)
		b.WriteString("}")
		if len(s.Else) > 0 {
			b.WriteString(" else {\n")
			for _, t := range s.Else {
				formatStmt(b, t, depth+1)
			}
			indent(b, depth)
			b.WriteString("}")
		}
		b.WriteByte('\n')
	case *WhileStmt:
		if s.PostTest {
			b.WriteString("do {\n")
			for _, t := range s.Body {
				formatStmt(b, t, depth+1)
			}
			indent(b, depth)
			b.WriteString("} while (")
			formatExpr(b, s.Cond, 0)
			b.WriteString(")\n")
		} else {
			b.WriteString("while (")
			formatExpr(b, s.Cond, 0)
			b.WriteString(") {\n")
			for _, t := range s.Body {
				formatStmt(b, t, depth+1)
			}
			indent(b, depth)
			b.WriteString("}\n")
		}
	case *ForStmt:
		b.WriteString("for ")
		b.WriteString(s.Var)
		b.WriteString(" = ")
		formatExpr(b, s.From, 0)
		b.WriteString(" to ")
		formatExpr(b, s.To, 0)
		b.WriteString(" {\n")
		for _, t := range s.Body {
			formatStmt(b, t, depth+1)
		}
		indent(b, depth)
		b.WriteString("}\n")
	case *ExprStmt:
		formatExpr(b, s.X, 0)
		b.WriteByte('\n')
	case *BreakStmt:
		b.WriteString("break\n")
	case *ContinueStmt:
		b.WriteString("continue\n")
	default:
		fmt.Fprintf(b, "<unknown stmt %T>\n", s)
	}
}

var opText = map[TokKind]string{
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/", TokPercent: "%",
	TokEq: "==", TokNeq: "!=", TokLt: "<", TokLeq: "<=", TokGt: ">",
	TokGeq: ">=", TokAnd: "&&", TokOr: "||", TokNot: "!",
}

// formatExpr writes e; enclosing is the precedence of the parent operator
// (0 for none) used to decide parenthesization.
func formatExpr(b *strings.Builder, e Expr, enclosing int) {
	switch e := e.(type) {
	case *Lit:
		b.WriteString(e.V.String())
	case *Ident:
		b.WriteString(e.Name)
	case *Unary:
		b.WriteString(opText[e.Op])
		formatExpr(b, e.X, 7)
	case *Binary:
		prec := binPrec[e.Op]
		if prec < enclosing {
			b.WriteByte('(')
		}
		formatExpr(b, e.X, prec)
		b.WriteByte(' ')
		b.WriteString(opText[e.Op])
		b.WriteByte(' ')
		formatExpr(b, e.Y, prec+1)
		if prec < enclosing {
			b.WriteByte(')')
		}
	case *Call:
		b.WriteString(e.Fn)
		formatArgs(b, e.Args)
	case *Method:
		formatExpr(b, e.Recv, 8)
		b.WriteByte('.')
		b.WriteString(e.Name)
		formatArgs(b, e.Args)
	case *Lambda:
		if len(e.Params) == 1 {
			b.WriteString(e.Params[0])
		} else {
			b.WriteByte('(')
			b.WriteString(strings.Join(e.Params, ", "))
			b.WriteByte(')')
		}
		b.WriteString(" => ")
		formatExpr(b, e.Body, 1)
	case *TupleExpr:
		b.WriteByte('(')
		for i, el := range e.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, el, 0)
		}
		b.WriteByte(')')
	case *Field:
		formatExpr(b, e.X, 8)
		fmt.Fprintf(b, ".%d", e.Index)
	case *GoFunc:
		fmt.Fprintf(b, "<native %s/%d>", e.Label, e.Arity)
	default:
		fmt.Fprintf(b, "<unknown expr %T>", e)
	}
}

func formatArgs(b *strings.Builder, args []Expr) {
	b.WriteByte('(')
	for i, a := range args {
		if i > 0 {
			b.WriteString(", ")
		}
		formatExpr(b, a, 0)
	}
	b.WriteByte(')')
}
