package lang

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/mitos-project/mitos/internal/val"
)

// Env resolves variable references during scalar evaluation.
type Env func(name string) (val.Value, bool)

// EvalScalar evaluates a scalar expression (no bag operations). Identifiers
// are resolved through env. Bag-typed constructs (readFile, only, bag
// methods, ...) are rejected: the compiler lowers them to dataflow operators
// before any evaluation happens.
func EvalScalar(e Expr, env Env) (val.Value, error) {
	switch e := e.(type) {
	case *Lit:
		return e.V, nil
	case *Ident:
		v, ok := env(e.Name)
		if !ok {
			return val.Value{}, errf(e.Pos, "undefined variable %s", e.Name)
		}
		return v, nil
	case *Unary:
		x, err := EvalScalar(e.X, env)
		if err != nil {
			return val.Value{}, err
		}
		return evalUnary(e.Pos, e.Op, x)
	case *Binary:
		return evalBinary(e, env)
	case *Call:
		return evalCall(e, env)
	case *TupleExpr:
		fields := make([]val.Value, len(e.Elems))
		for i, el := range e.Elems {
			v, err := EvalScalar(el, env)
			if err != nil {
				return val.Value{}, err
			}
			fields[i] = v
		}
		return val.Tuple(fields...), nil
	case *Field:
		x, err := EvalScalar(e.X, env)
		if err != nil {
			return val.Value{}, err
		}
		if x.Kind() != val.KindTuple {
			return val.Value{}, errf(e.Pos, "field access on %s value", x.Kind())
		}
		if e.Index >= x.Len() {
			return val.Value{}, errf(e.Pos, "field index %d out of range for %d-tuple", e.Index, x.Len())
		}
		return x.Field(e.Index), nil
	default:
		return val.Value{}, errf(e.ExprPos(), "cannot evaluate %T as a scalar expression", e)
	}
}

func evalUnary(pos Pos, op TokKind, x val.Value) (val.Value, error) {
	switch op {
	case TokMinus:
		switch x.Kind() {
		case val.KindInt:
			return val.Int(-x.AsInt()), nil
		case val.KindFloat:
			return val.Float(-x.AsFloat()), nil
		}
		return val.Value{}, errf(pos, "unary '-' on %s value", x.Kind())
	case TokNot:
		if x.Kind() != val.KindBool {
			return val.Value{}, errf(pos, "'!' on %s value", x.Kind())
		}
		return val.Bool(!x.AsBool()), nil
	default:
		return val.Value{}, errf(pos, "unknown unary operator %s", op)
	}
}

func evalBinary(e *Binary, env Env) (val.Value, error) {
	// Short-circuit boolean operators.
	if e.Op == TokAnd || e.Op == TokOr {
		x, err := EvalScalar(e.X, env)
		if err != nil {
			return val.Value{}, err
		}
		if x.Kind() != val.KindBool {
			return val.Value{}, errf(e.Pos, "%s on %s value", e.Op, x.Kind())
		}
		if e.Op == TokAnd && !x.AsBool() {
			return val.Bool(false), nil
		}
		if e.Op == TokOr && x.AsBool() {
			return val.Bool(true), nil
		}
		y, err := EvalScalar(e.Y, env)
		if err != nil {
			return val.Value{}, err
		}
		if y.Kind() != val.KindBool {
			return val.Value{}, errf(e.Pos, "%s on %s value", e.Op, y.Kind())
		}
		return y, nil
	}
	x, err := EvalScalar(e.X, env)
	if err != nil {
		return val.Value{}, err
	}
	y, err := EvalScalar(e.Y, env)
	if err != nil {
		return val.Value{}, err
	}
	switch e.Op {
	case TokPlus:
		// String + anything (or anything + string) concatenates.
		if x.Kind() == val.KindString || y.Kind() == val.KindString {
			return val.Str(Render(x) + Render(y)), nil
		}
		return arith(e.Pos, "+", x, y,
			func(a, b int64) int64 { return a + b },
			func(a, b float64) float64 { return a + b })
	case TokMinus:
		return arith(e.Pos, "-", x, y,
			func(a, b int64) int64 { return a - b },
			func(a, b float64) float64 { return a - b })
	case TokStar:
		return arith(e.Pos, "*", x, y,
			func(a, b int64) int64 { return a * b },
			func(a, b float64) float64 { return a * b })
	case TokSlash:
		if bothInt(x, y) {
			if y.AsInt() == 0 {
				return val.Value{}, errf(e.Pos, "integer division by zero")
			}
			return val.Int(x.AsInt() / y.AsInt()), nil
		}
		return arith(e.Pos, "/", x, y, nil,
			func(a, b float64) float64 { return a / b })
	case TokPercent:
		if bothInt(x, y) {
			if y.AsInt() == 0 {
				return val.Value{}, errf(e.Pos, "integer modulo by zero")
			}
			return val.Int(x.AsInt() % y.AsInt()), nil
		}
		return arith(e.Pos, "%", x, y, nil, math.Mod)
	case TokEq, TokNeq:
		eq, err := scalarEqual(e.Pos, x, y)
		if err != nil {
			return val.Value{}, err
		}
		if e.Op == TokNeq {
			eq = !eq
		}
		return val.Bool(eq), nil
	case TokLt, TokLeq, TokGt, TokGeq:
		c, err := scalarCompare(e.Pos, x, y)
		if err != nil {
			return val.Value{}, err
		}
		var out bool
		switch e.Op {
		case TokLt:
			out = c < 0
		case TokLeq:
			out = c <= 0
		case TokGt:
			out = c > 0
		case TokGeq:
			out = c >= 0
		}
		return val.Bool(out), nil
	default:
		return val.Value{}, errf(e.Pos, "unknown binary operator %s", e.Op)
	}
}

func bothInt(x, y val.Value) bool {
	return x.Kind() == val.KindInt && y.Kind() == val.KindInt
}

func isNumeric(v val.Value) bool {
	return v.Kind() == val.KindInt || v.Kind() == val.KindFloat
}

func arith(pos Pos, op string, x, y val.Value, fi func(a, b int64) int64, ff func(a, b float64) float64) (val.Value, error) {
	if !isNumeric(x) || !isNumeric(y) {
		return val.Value{}, errf(pos, "'%s' on %s and %s values", op, x.Kind(), y.Kind())
	}
	if fi != nil && bothInt(x, y) {
		return val.Int(fi(x.AsInt(), y.AsInt())), nil
	}
	return val.Float(ff(x.AsNumber(), y.AsNumber())), nil
}

// scalarEqual compares with numeric coercion: Int(1) == Float(1.0).
func scalarEqual(pos Pos, x, y val.Value) (bool, error) {
	if isNumeric(x) && isNumeric(y) {
		return x.AsNumber() == y.AsNumber(), nil
	}
	if x.Kind() != y.Kind() {
		return false, nil
	}
	return x.Equal(y), nil
}

func scalarCompare(pos Pos, x, y val.Value) (int, error) {
	if isNumeric(x) && isNumeric(y) {
		a, b := x.AsNumber(), y.AsNumber()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if x.Kind() != y.Kind() {
		return 0, errf(pos, "cannot order %s and %s values", x.Kind(), y.Kind())
	}
	switch x.Kind() {
	case val.KindString, val.KindBool, val.KindTuple:
		return x.Compare(y), nil
	default:
		return 0, errf(pos, "cannot order %s values", x.Kind())
	}
}

func evalCall(e *Call, env Env) (val.Value, error) {
	// cond is lazy: only the selected branch is evaluated.
	if e.Fn == "cond" {
		c, err := EvalScalar(e.Args[0], env)
		if err != nil {
			return val.Value{}, err
		}
		if c.Kind() != val.KindBool {
			return val.Value{}, errf(e.Pos, "cond condition is %s, want bool", c.Kind())
		}
		if c.AsBool() {
			return EvalScalar(e.Args[1], env)
		}
		return EvalScalar(e.Args[2], env)
	}
	args := make([]val.Value, len(e.Args))
	for i, a := range e.Args {
		v, err := EvalScalar(a, env)
		if err != nil {
			return val.Value{}, err
		}
		args[i] = v
	}
	switch e.Fn {
	case "abs":
		x := args[0]
		switch x.Kind() {
		case val.KindInt:
			n := x.AsInt()
			if n < 0 {
				n = -n
			}
			return val.Int(n), nil
		case val.KindFloat:
			return val.Float(math.Abs(x.AsFloat())), nil
		}
		return val.Value{}, errf(e.Pos, "abs on %s value", x.Kind())
	case "str":
		return val.Str(Render(args[0])), nil
	case "num":
		return parseNum(e.Pos, args[0])
	case "len":
		if args[0].Kind() != val.KindString {
			return val.Value{}, errf(e.Pos, "len on %s value", args[0].Kind())
		}
		return val.Int(int64(len(args[0].AsStr()))), nil
	case "min", "max":
		x, y := args[0], args[1]
		c := 0
		switch {
		case x.Kind() == val.KindString && y.Kind() == val.KindString:
			c = strings.Compare(x.AsStr(), y.AsStr())
		case isNumeric(x) && isNumeric(y):
			switch {
			case x.AsNumber() < y.AsNumber():
				c = -1
			case x.AsNumber() > y.AsNumber():
				c = 1
			}
		default:
			return val.Value{}, errf(e.Pos, "%s on %s and %s values", e.Fn, x.Kind(), y.Kind())
		}
		if (e.Fn == "min") == (c <= 0) {
			return x, nil
		}
		return y, nil
	case "fst", "snd":
		x := args[0]
		if x.Kind() != val.KindTuple {
			return val.Value{}, errf(e.Pos, "%s on %s value", e.Fn, x.Kind())
		}
		idx := 0
		if e.Fn == "snd" {
			idx = 1
		}
		if x.Len() <= idx {
			return val.Value{}, errf(e.Pos, "%s on %d-tuple", e.Fn, x.Len())
		}
		return x.Field(idx), nil
	default:
		return val.Value{}, errf(e.Pos, "%s cannot be evaluated as a scalar (bag operations are compiled, not evaluated)", e.Fn)
	}
}

func parseNum(pos Pos, x val.Value) (val.Value, error) {
	switch x.Kind() {
	case val.KindInt, val.KindFloat:
		return x, nil
	case val.KindString:
		s := strings.TrimSpace(x.AsStr())
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return val.Int(i), nil
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return val.Float(f), nil
		}
		return val.Value{}, errf(pos, "num: cannot parse %q", s)
	default:
		return val.Value{}, errf(pos, "num on %s value", x.Kind())
	}
}

// Render converts a value to its display string: strings render without
// quotes (so that "file" + day works as in the paper), all other values use
// their literal syntax.
func Render(v val.Value) string {
	switch v.Kind() {
	case val.KindString:
		return v.AsStr()
	case val.KindFloat:
		return strconv.FormatFloat(v.AsFloat(), 'g', -1, 64)
	default:
		return v.String()
	}
}

// UDF is a callable user-defined function: either a script lambda evaluated
// by the interpreter, or a native Go function. UDFs are pure functions of
// their arguments.
type UDF struct {
	arity    int
	label    string
	lambda   *Lambda
	compiled compiledFn
	native   func(args []val.Value) val.Value
}

// MakeUDF wraps a Lambda or GoFunc expression into a UDF. Any other
// expression is an error.
func MakeUDF(e Expr) (*UDF, error) {
	switch e := e.(type) {
	case *Lambda:
		u := &UDF{arity: len(e.Params), label: udfLabel(e), lambda: e}
		if err := u.ensureCompiled(); err != nil {
			return nil, err
		}
		return u, nil
	case *GoFunc:
		return &UDF{arity: e.Arity, label: e.Label, native: e.Fn}, nil
	default:
		return nil, errf(e.ExprPos(), "expected a function, got %T", e)
	}
}

// Arity returns the number of parameters the UDF takes.
func (u *UDF) Arity() int { return u.arity }

// Call applies the UDF to args. The number of args must equal Arity.
func (u *UDF) Call(args ...val.Value) (val.Value, error) {
	if len(args) != u.arity {
		return val.Value{}, fmt.Errorf("lang: UDF %s called with %d args, takes %d", u.label, len(args), u.arity)
	}
	if u.native != nil {
		return u.native(args), nil
	}
	return u.compiled(args)
}

// String describes the UDF for debugging.
func (u *UDF) String() string {
	if u.native != nil {
		return fmt.Sprintf("native:%s/%d", u.label, u.arity)
	}
	var b strings.Builder
	formatExpr(&b, u.lambda, 0)
	return b.String()
}
