package lang

import (
	"strconv"
	"strings"

	"github.com/mitos-project/mitos/internal/val"
)

// Parse parses Mitos script source into a Program AST. It does not perform
// name resolution or type checking; see Check.
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.tok.Kind != TokEOF {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return &Program{Stmts: stmts}, nil
}

type parser struct {
	lex  *lexer
	tok  Token // current token
	next Token // one token of lookahead
}

func (p *parser) advance() error {
	p.tok = p.next
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.next = t
	return nil
}

func (p *parser) expect(k TokKind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, errf(p.tok.Pos, "expected %s, found %s", k, p.describe(p.tok))
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return Token{}, err
	}
	return t, nil
}

func (p *parser) describe(t Token) string {
	switch t.Kind {
	case TokIdent:
		return "identifier '" + t.Text + "'"
	case TokInt, TokFloat:
		return "number " + t.Text
	case TokString:
		return "string literal"
	default:
		return t.Kind.String()
	}
}

func (p *parser) skipSemis() error {
	for p.tok.Kind == TokSemi {
		if err := p.advance(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) parseStmt() (Stmt, error) {
	if err := p.skipSemis(); err != nil {
		return nil, err
	}
	switch p.tok.Kind {
	case TokIf:
		return p.parseIf()
	case TokWhile:
		return p.parseWhile()
	case TokDo:
		return p.parseDoWhile()
	case TokFor:
		return p.parseFor()
	case TokBreak:
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.skipSemis(); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: pos}, nil
	case TokContinue:
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.skipSemis(); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: pos}, nil
	case TokIdent:
		if p.next.Kind == TokAssign {
			pos := p.tok.Pos
			name := p.tok.Text
			if err := p.advance(); err != nil { // ident
				return nil, err
			}
			if err := p.advance(); err != nil { // '='
				return nil, err
			}
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.skipSemis(); err != nil {
				return nil, err
			}
			return &AssignStmt{Pos: pos, Name: name, RHS: rhs}, nil
		}
		fallthrough
	default:
		pos := p.tok.Pos
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.skipSemis(); err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: pos, X: x}, nil
	}
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for {
		if err := p.skipSemis(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokRBrace {
			break
		}
		if p.tok.Kind == TokEOF {
			return nil, errf(p.tok.Pos, "unexpected end of input in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return stmts, nil
}

func (p *parser) parseIf() (Stmt, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokIf); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.tok.Kind == TokElse {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokIf {
			nested, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			els = []Stmt{nested}
		} else {
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
	}
	return &IfStmt{Pos: pos, Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil
}

func (p *parser) parseDoWhile() (Stmt, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokDo); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: pos, Cond: cond, Body: body, PostTest: true}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokFor); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	from, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokTo); err != nil {
		return nil, err
	}
	to, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Pos: pos, Var: name.Text, From: from, To: to, Body: body}, nil
}

// Operator precedence, loosest first.
var binPrec = map[TokKind]int{
	TokOr:  1,
	TokAnd: 2,
	TokEq:  3, TokNeq: 3,
	TokLt: 4, TokLeq: 4, TokGt: 4, TokGeq: 4,
	TokPlus: 5, TokMinus: 5,
	TokStar: 6, TokSlash: 6, TokPercent: 6,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.tok.Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.tok.Kind
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Pos: pos, Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.tok.Kind {
	case TokMinus, TokNot:
		op := p.tok.Kind
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: pos, Op: op, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokDot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch p.tok.Kind {
		case TokInt:
			idx, convErr := strconv.Atoi(p.tok.Text)
			if convErr != nil || idx < 0 {
				return nil, errf(p.tok.Pos, "invalid tuple field index %q", p.tok.Text)
			}
			pos := p.tok.Pos
			if err := p.advance(); err != nil {
				return nil, err
			}
			x = &Field{Pos: pos, X: x, Index: idx}
		case TokFloat:
			// Chained field access `t.0.1` lexes the `0.1` as one float
			// token; split it back into two indices.
			pos := p.tok.Pos
			a, b, ok := strings.Cut(p.tok.Text, ".")
			ia, errA := strconv.Atoi(a)
			ib, errB := strconv.Atoi(b)
			if !ok || errA != nil || errB != nil || ia < 0 || ib < 0 {
				return nil, errf(pos, "invalid tuple field index %q", p.tok.Text)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			x = &Field{Pos: pos, X: &Field{Pos: pos, X: x, Index: ia}, Index: ib}
		case TokIdent:
			name := p.tok.Text
			pos := p.tok.Pos
			if err := p.advance(); err != nil {
				return nil, err
			}
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			x = &Method{Pos: pos, Recv: x, Name: name, Args: args}
		default:
			return nil, errf(p.tok.Pos, "expected field index or method name after '.', found %s", p.describe(p.tok))
		}
	}
	return x, nil
}

func (p *parser) parseArgs() ([]Expr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var args []Expr
	for p.tok.Kind != TokRParen {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.tok.Kind != TokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokInt:
		i, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			return nil, errf(pos, "invalid integer literal %q", p.tok.Text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Pos: pos, V: val.Int(i)}, nil
	case TokFloat:
		f, err := strconv.ParseFloat(p.tok.Text, 64)
		if err != nil {
			return nil, errf(pos, "invalid float literal %q", p.tok.Text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Pos: pos, V: val.Float(f)}, nil
	case TokString:
		s := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Pos: pos, V: val.Str(s)}, nil
	case TokTrue, TokFalse:
		b := p.tok.Kind == TokTrue
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Pos: pos, V: val.Bool(b)}, nil
	case TokIdent:
		name := p.tok.Text
		// Lambda with a single parameter: `x => body`.
		if p.next.Kind == TokArrow {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			body, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &Lambda{Pos: pos, Params: []string{name}, Body: body}, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Builtin call: `name(args)`.
		if p.tok.Kind == TokLParen {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &Call{Pos: pos, Fn: name, Args: args}, nil
		}
		return &Ident{Pos: pos, Name: name}, nil
	case TokLParen:
		return p.parseParenOrTupleOrLambda()
	default:
		return nil, errf(pos, "expected expression, found %s", p.describe(p.tok))
	}
}

// parseParenOrTupleOrLambda disambiguates `(e)`, `(a, b, ...)` tuples, `()`
// empty tuples, and `(a, b) => body` lambdas.
func (p *parser) parseParenOrTupleOrLambda() (Expr, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var elems []Expr
	for p.tok.Kind != TokRParen {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
		if p.tok.Kind != TokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if p.tok.Kind == TokArrow {
		params := make([]string, len(elems))
		for i, e := range elems {
			id, ok := e.(*Ident)
			if !ok {
				return nil, errf(e.ExprPos(), "lambda parameter must be an identifier")
			}
			params[i] = id.Name
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Lambda{Pos: pos, Params: params, Body: body}, nil
	}
	if len(elems) == 1 {
		return elems[0], nil
	}
	return &TupleExpr{Pos: pos, Elems: elems}, nil
}
