package lang

import "testing"

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	l := newLexer(src)
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks
		}
	}
}

func TestLexBasicTokens(t *testing.T) {
	toks := lexAll(t, `x = a.map(y => (y, 1)) // comment
while (x <= 365) { }`)
	kinds := []TokKind{
		TokIdent, TokAssign, TokIdent, TokDot, TokIdent, TokLParen,
		TokIdent, TokArrow, TokLParen, TokIdent, TokComma, TokInt,
		TokRParen, TokRParen,
		TokWhile, TokLParen, TokIdent, TokLeq, TokInt, TokRParen,
		TokLBrace, TokRBrace, TokEOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v (%q), want %v", i, toks[i].Kind, toks[i].Text, k)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind TokKind
	}{
		{"0", TokInt},
		{"42", TokInt},
		{"1.5", TokFloat},
		{"2e10", TokFloat},
		{"2.5e-3", TokFloat},
		{"1E+2", TokFloat},
	}
	for _, c := range cases {
		toks := lexAll(t, c.src)
		if toks[0].Kind != c.kind || toks[0].Text != c.src {
			t.Errorf("lex %q = %v %q, want %v", c.src, toks[0].Kind, toks[0].Text, c.kind)
		}
	}
	// "1.x" must lex as Int, Dot, Ident (tuple field access syntax uses dot).
	toks := lexAll(t, "v.0")
	if toks[0].Kind != TokIdent || toks[1].Kind != TokDot || toks[2].Kind != TokInt {
		t.Errorf("v.0 lexed as %v", toks)
	}
}

func TestLexStrings(t *testing.T) {
	toks := lexAll(t, `"abc" "a\"b\n\t\\"`)
	if toks[0].Text != "abc" {
		t.Errorf("first string = %q", toks[0].Text)
	}
	if toks[1].Text != "a\"b\n\t\\" {
		t.Errorf("escaped string = %q", toks[1].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `"bad \q escape"`, "a ~ b", "\"line\nbreak\""} {
		l := newLexer(src)
		var err error
		for err == nil {
			var tok Token
			tok, err = l.next()
			if err == nil && tok.Kind == TokEOF {
				t.Errorf("lex %q: expected error, got EOF", src)
				break
			}
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexAll(t, "a\n  b")
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks := lexAll(t, "if ifx while whiled do for to true false")
	want := []TokKind{TokIf, TokIdent, TokWhile, TokIdent, TokDo, TokFor, TokTo, TokTrue, TokFalse, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}
