package lang

import (
	"strings"
	"testing"
)

// visitCountScript is the paper's running example (Sec. 2), including the
// day-diff branch, in Mitos script syntax.
const visitCountScript = `
yesterdayCounts = empty()
day = 1
do {
  visits = readFile("pageVisitLog" + day)
  counts = visits.map(x => (x, 1)).reduceByKey((a, b) => a + b)
  if (day != 1) {
    diffs = counts.join(yesterdayCounts).map(t => abs(t.1 - t.2))
    diffs.sum().writeFile("diff" + day)
  }
  yesterdayCounts = counts
  day = day + 1
} while (day <= 365)
`

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return p
}

func TestParseVisitCount(t *testing.T) {
	p := mustParse(t, visitCountScript)
	if len(p.Stmts) != 3 {
		t.Fatalf("top-level statements = %d, want 3", len(p.Stmts))
	}
	loop, ok := p.Stmts[2].(*WhileStmt)
	if !ok || !loop.PostTest {
		t.Fatalf("third stmt = %T (posttest=%v), want do-while", p.Stmts[2], ok && loop.PostTest)
	}
	if len(loop.Body) != 5 {
		t.Fatalf("loop body statements = %d, want 5", len(loop.Body))
	}
	ifs, ok := loop.Body[2].(*IfStmt)
	if !ok {
		t.Fatalf("loop body[2] = %T, want if", loop.Body[2])
	}
	if len(ifs.Then) != 2 || len(ifs.Else) != 0 {
		t.Fatalf("if branches: then=%d else=%d", len(ifs.Then), len(ifs.Else))
	}
}

// TestParseFormatRoundtrip checks Format(Parse(x)) reparses to the same
// formatted text — a fixpoint property of the printer.
func TestParseFormatRoundtrip(t *testing.T) {
	sources := []string{
		visitCountScript,
		`x = 1 + 2 * 3`,
		`x = (1 + 2) * 3`,
		`b = a.map(x => x).filter(x => x > 0)`,
		`r = a.join(b).reduceByKey((x, y) => min(x, y))`,
		`x = -1
y = !true
z = a && b || !c`,
		`for i = 1 to 10 {
  s = s + i
}`,
		`if (a < b) {
  x = 1
} else if (a == b) {
  x = 2
} else {
  x = 3
}`,
		`while (only(d.sum()) > 0.5) {
  d = d.map(x => x / 2)
}`,
		`t = (1, "two", true)
f = t.0 + t.2`,
		`e = empty()
n = newBag(7)
c = a.cross(b).union(e).distinct().count()`,
	}
	for _, src := range sources {
		p1 := mustParse(t, src)
		f1 := Format(p1)
		p2, err := Parse(f1)
		if err != nil {
			t.Errorf("reparse of formatted source failed: %v\nformatted:\n%s", err, f1)
			continue
		}
		f2 := Format(p2)
		if f1 != f2 {
			t.Errorf("format not a fixpoint:\nfirst:\n%s\nsecond:\n%s", f1, f2)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	p := mustParse(t, "x = 1 + 2 * 3 == 7 && true")
	got := Format(p)
	want := "x = 1 + 2 * 3 == 7 && true\n"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	// Explicit parens must survive where required.
	p = mustParse(t, "x = (1 + 2) * 3")
	if got := Format(p); got != "x = (1 + 2) * 3\n" {
		t.Errorf("parens lost: %q", got)
	}
}

func TestParseLambdas(t *testing.T) {
	p := mustParse(t, `a = b.reduceByKey((x, y) => x + y)
c = b.map(e => (e, 1))`)
	a := p.Stmts[0].(*AssignStmt).RHS.(*Method)
	l := a.Args[0].(*Lambda)
	if len(l.Params) != 2 || l.Params[0] != "x" || l.Params[1] != "y" {
		t.Errorf("two-param lambda params = %v", l.Params)
	}
	c := p.Stmts[1].(*AssignStmt).RHS.(*Method)
	l1 := c.Args[0].(*Lambda)
	if len(l1.Params) != 1 || l1.Params[0] != "e" {
		t.Errorf("one-param lambda params = %v", l1.Params)
	}
	if _, ok := l1.Body.(*TupleExpr); !ok {
		t.Errorf("lambda body = %T, want tuple", l1.Body)
	}
}

func TestParseEmptyTuple(t *testing.T) {
	p := mustParse(t, "x = ()")
	tup, ok := p.Stmts[0].(*AssignStmt).RHS.(*TupleExpr)
	if !ok || len(tup.Elems) != 0 {
		t.Fatalf("RHS = %T, want empty tuple", p.Stmts[0].(*AssignStmt).RHS)
	}
}

func TestParseSemicolons(t *testing.T) {
	p := mustParse(t, "a = 1; b = 2;; c = a + b")
	if len(p.Stmts) != 3 {
		t.Fatalf("got %d stmts, want 3", len(p.Stmts))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"x =", "expected expression"},
		{"if x { }", "expected '('"},
		{"if (x) y = 1", "expected '{'"},
		{"while (x) {", "unexpected end of input"},
		{"do { } until (x)", "expected 'while'"},
		{"for 1 = 2 to 3 { }", "expected identifier"},
		{"x = a.", "expected field index or method name"},
		{"x = a.-1", "expected field index or method name"},
		{"x = (a, 1) => a", "lambda parameter must be an identifier"},
		{"x = 99999999999999999999", "invalid integer"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error", c.src)
			continue
		}
		if c.wantSub != "" && !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("a = 1\nb = @")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.HasPrefix(err.Error(), "2:5") {
		t.Errorf("error position = %q, want prefix 2:5", err.Error())
	}
}

func TestParseNestedLoops(t *testing.T) {
	p := mustParse(t, `
while (a < 10) {
  x = readFile("f" + a)
  while (b < 5) {
    y = x.map(v => v)
    z = x.join(y)
    b = b + 1
  }
  a = a + 1
}`)
	outer := p.Stmts[0].(*WhileStmt)
	if _, ok := outer.Body[1].(*WhileStmt); !ok {
		t.Fatalf("inner stmt = %T, want nested while", outer.Body[1])
	}
}
