package lang

import (
	"strings"
	"testing"
)

func checkSrc(t *testing.T, src string) (*Info, error) {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(p)
}

func TestCheckVisitCount(t *testing.T) {
	if _, err := checkSrc(t, visitCountScript); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestCheckTypesInferred(t *testing.T) {
	src := `b = readFile("f")
n = only(b.count())
m = b.map(x => (x, 1))
`
	p := mustParse(t, src)
	info, err := Check(p)
	if err != nil {
		t.Fatal(err)
	}
	// b and m are bags, n is scalar.
	rhs0 := p.Stmts[0].(*AssignStmt).RHS
	rhs1 := p.Stmts[1].(*AssignStmt).RHS
	rhs2 := p.Stmts[2].(*AssignStmt).RHS
	if info.TypeOf(rhs0) != TypeBag {
		t.Error("readFile not bag")
	}
	if info.TypeOf(rhs1) != TypeScalar {
		t.Error("only(...) not scalar")
	}
	if info.TypeOf(rhs2) != TypeBag {
		t.Error("map not bag")
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"use before assign", `x = y + 1`, "used before assignment"},
		{"use before assign in branch", `if (true) { a = 1 }
b = a`, "used before assignment"},
		{"branch both assign ok", `if (true) { a = 1 } else { a = 2 }
b = a`, ""},
		{"type change", `x = 1
x = readFile("f")`, "cannot reassign"},
		{"bag in arithmetic", `b = readFile("f")
x = b + 1`, "expected scalar"},
		{"scalar as bag", `x = 1
y = x.map(z => z)`, "expected bag"},
		{"bag condition", `b = readFile("f")
if (b) { x = 1 }`, "expected scalar"},
		{"unknown function", `x = frobnicate(1)`, "unknown function"},
		{"unknown method", `b = readFile("f")
c = b.frob()`, "unknown bag operation"},
		{"wrong builtin arity", `x = abs(1, 2)`, "expects 1 argument"},
		{"wrong lambda arity", `b = readFile("f")
c = b.map((x, y) => x)`, "must take 1 parameter"},
		{"reduce needs two params", `b = readFile("f")
c = b.reduce(x => x)`, "must take 2 parameter"},
		{"lambda captures outer", `n = 5
b = readFile("f")
c = b.map(x => x + n)`, "UDFs may reference only their parameters"},
		{"duplicate lambda params", `b = readFile("f")
c = b.reduce((x, x) => x)`, "duplicate lambda parameter"},
		{"lambda outside op", `f = x => x`, "only allowed as an argument"},
		{"bare expression stmt", `x = 1
x + 1`, "only writeFile"},
		{"writeFile stmt ok", `b = readFile("f")
b.writeFile("out")`, ""},
		{"join arg must be bag", `b = readFile("f")
c = b.join(1)`, "expected bag"},
		{"sum takes no args", `b = readFile("f")
c = b.sum(1)`, "expects no arguments"},
		{"while body may not run", `x = 1
while (x > 0) { y = 2; x = x - 1 }
z = y`, "used before assignment"},
		{"do-while body definitely runs", `x = 1
do { y = 2; x = x - 1 } while (x > 0)
z = y`, ""},
		{"for var scalar", `for i = 1 to 3 { x = i }`, ""},
		{"for bounds scalar", `b = readFile("f")
for i = b to 3 { x = i }`, "expected scalar"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := checkSrc(t, c.src)
			if c.wantSub == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error = %q, want substring %q", err, c.wantSub)
			}
		})
	}
}

func TestCheckLambdaParamShadowsOuterVar(t *testing.T) {
	// A lambda parameter may share a name with an outer bag variable; inside
	// the lambda it is the scalar parameter.
	src := `x = readFile("f")
y = x.map(x => x + 1)
z = x.filter(v => v > 0)
`
	if _, err := checkSrc(t, src); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestCheckNestedControlFlow(t *testing.T) {
	src := `
edges = readFile("edges")
i = 0
while (i < 3) {
  j = 0
  while (j < 2) {
    if (j == 1) {
      t = edges.map(e => e)
    } else {
      t = edges.filter(e => true)
    }
    u = t.count()
    j = j + 1
  }
  i = i + 1
}
`
	if _, err := checkSrc(t, src); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestTypeString(t *testing.T) {
	if TypeScalar.String() != "scalar" || TypeBag.String() != "bag" {
		t.Error("Type.String broken")
	}
}

func TestInfoTypeOfPanicsOnUnknown(t *testing.T) {
	info := &Info{Types: map[Expr]Type{}}
	defer func() {
		if recover() == nil {
			t.Error("TypeOf on unchecked expr did not panic")
		}
	}()
	info.TypeOf(&Ident{Name: "x"})
}
