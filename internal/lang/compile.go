package lang

import (
	"math"
	"strings"

	"github.com/mitos-project/mitos/internal/val"
)

// compiledFn evaluates a compiled expression against the lambda arguments.
type compiledFn func(args []val.Value) (val.Value, error)

// compileExpr compiles a scalar expression into a closure tree: all
// dispatch on node and operator kinds happens once, at compile time, so
// per-element UDF evaluation costs a few nested calls instead of an AST
// walk. params maps lambda parameter names to argument indices.
//
// UDFs run this compiled form (see MakeUDF); the AST-walking EvalScalar
// remains the readable specification and is used for whole-statement
// evaluation in the reference interpreter.
func compileExpr(e Expr, params []string) (compiledFn, error) {
	switch e := e.(type) {
	case *Lit:
		v := e.V
		return func([]val.Value) (val.Value, error) { return v, nil }, nil
	case *Ident:
		idx := -1
		for i, p := range params {
			if p == e.Name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, errf(e.Pos, "undefined variable %s", e.Name)
		}
		return func(args []val.Value) (val.Value, error) { return args[idx], nil }, nil
	case *Unary:
		x, err := compileExpr(e.X, params)
		if err != nil {
			return nil, err
		}
		pos, op := e.Pos, e.Op
		return func(args []val.Value) (val.Value, error) {
			v, err := x(args)
			if err != nil {
				return val.Value{}, err
			}
			return evalUnary(pos, op, v)
		}, nil
	case *Binary:
		return compileBinary(e, params)
	case *Call:
		return compileCall(e, params)
	case *TupleExpr:
		fields := make([]compiledFn, len(e.Elems))
		for i, el := range e.Elems {
			f, err := compileExpr(el, params)
			if err != nil {
				return nil, err
			}
			fields[i] = f
		}
		return func(args []val.Value) (val.Value, error) {
			out := make([]val.Value, len(fields))
			for i, f := range fields {
				v, err := f(args)
				if err != nil {
					return val.Value{}, err
				}
				out[i] = v
			}
			return val.Tuple(out...), nil
		}, nil
	case *Field:
		x, err := compileExpr(e.X, params)
		if err != nil {
			return nil, err
		}
		pos, idx := e.Pos, e.Index
		return func(args []val.Value) (val.Value, error) {
			v, err := x(args)
			if err != nil {
				return val.Value{}, err
			}
			if v.Kind() != val.KindTuple {
				return val.Value{}, errf(pos, "field access on %s value", v.Kind())
			}
			if idx >= v.Len() {
				return val.Value{}, errf(pos, "field index %d out of range for %d-tuple", idx, v.Len())
			}
			return v.Field(idx), nil
		}, nil
	default:
		return nil, errf(e.ExprPos(), "cannot compile %T in a UDF body", e)
	}
}

func compileBinary(e *Binary, params []string) (compiledFn, error) {
	x, err := compileExpr(e.X, params)
	if err != nil {
		return nil, err
	}
	y, err := compileExpr(e.Y, params)
	if err != nil {
		return nil, err
	}
	pos := e.Pos
	// Short-circuit boolean operators.
	switch e.Op {
	case TokAnd, TokOr:
		isAnd := e.Op == TokAnd
		return func(args []val.Value) (val.Value, error) {
			a, err := x(args)
			if err != nil {
				return val.Value{}, err
			}
			if a.Kind() != val.KindBool {
				return val.Value{}, errf(pos, "boolean operator on %s value", a.Kind())
			}
			if isAnd && !a.AsBool() {
				return val.Bool(false), nil
			}
			if !isAnd && a.AsBool() {
				return val.Bool(true), nil
			}
			b, err := y(args)
			if err != nil {
				return val.Value{}, err
			}
			if b.Kind() != val.KindBool {
				return val.Value{}, errf(pos, "boolean operator on %s value", b.Kind())
			}
			return b, nil
		}, nil
	}
	type binOp func(a, b val.Value) (val.Value, error)
	var op binOp
	switch e.Op {
	case TokPlus:
		op = func(a, b val.Value) (val.Value, error) {
			if a.Kind() == val.KindInt && b.Kind() == val.KindInt {
				return val.Int(a.AsInt() + b.AsInt()), nil
			}
			if a.Kind() == val.KindString || b.Kind() == val.KindString {
				return val.Str(Render(a) + Render(b)), nil
			}
			return arith(pos, "+", a, b,
				func(x, y int64) int64 { return x + y },
				func(x, y float64) float64 { return x + y })
		}
	case TokMinus:
		op = func(a, b val.Value) (val.Value, error) {
			if a.Kind() == val.KindInt && b.Kind() == val.KindInt {
				return val.Int(a.AsInt() - b.AsInt()), nil
			}
			return arith(pos, "-", a, b, nil,
				func(x, y float64) float64 { return x - y })
		}
	case TokStar:
		op = func(a, b val.Value) (val.Value, error) {
			if a.Kind() == val.KindInt && b.Kind() == val.KindInt {
				return val.Int(a.AsInt() * b.AsInt()), nil
			}
			return arith(pos, "*", a, b, nil,
				func(x, y float64) float64 { return x * y })
		}
	case TokSlash:
		op = func(a, b val.Value) (val.Value, error) {
			if bothInt(a, b) {
				if b.AsInt() == 0 {
					return val.Value{}, errf(pos, "integer division by zero")
				}
				return val.Int(a.AsInt() / b.AsInt()), nil
			}
			return arith(pos, "/", a, b, nil,
				func(x, y float64) float64 { return x / y })
		}
	case TokPercent:
		op = func(a, b val.Value) (val.Value, error) {
			if bothInt(a, b) {
				if b.AsInt() == 0 {
					return val.Value{}, errf(pos, "integer modulo by zero")
				}
				return val.Int(a.AsInt() % b.AsInt()), nil
			}
			return arith(pos, "%", a, b, nil, math.Mod)
		}
	case TokEq, TokNeq:
		negate := e.Op == TokNeq
		op = func(a, b val.Value) (val.Value, error) {
			eq, err := scalarEqual(pos, a, b)
			if err != nil {
				return val.Value{}, err
			}
			return val.Bool(eq != negate), nil
		}
	case TokLt, TokLeq, TokGt, TokGeq:
		kind := e.Op
		op = func(a, b val.Value) (val.Value, error) {
			c, err := scalarCompare(pos, a, b)
			if err != nil {
				return val.Value{}, err
			}
			var out bool
			switch kind {
			case TokLt:
				out = c < 0
			case TokLeq:
				out = c <= 0
			case TokGt:
				out = c > 0
			case TokGeq:
				out = c >= 0
			}
			return val.Bool(out), nil
		}
	default:
		return nil, errf(pos, "unknown binary operator %s", e.Op)
	}
	return func(args []val.Value) (val.Value, error) {
		a, err := x(args)
		if err != nil {
			return val.Value{}, err
		}
		b, err := y(args)
		if err != nil {
			return val.Value{}, err
		}
		return op(a, b)
	}, nil
}

func compileCall(e *Call, params []string) (compiledFn, error) {
	fns := make([]compiledFn, len(e.Args))
	for i, a := range e.Args {
		f, err := compileExpr(a, params)
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	pos := e.Pos
	evalArgs := func(args []val.Value) ([]val.Value, error) {
		out := make([]val.Value, len(fns))
		for i, f := range fns {
			v, err := f(args)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	switch e.Fn {
	case "cond":
		c, a, b := fns[0], fns[1], fns[2]
		return func(args []val.Value) (val.Value, error) {
			cv, err := c(args)
			if err != nil {
				return val.Value{}, err
			}
			if cv.Kind() != val.KindBool {
				return val.Value{}, errf(pos, "cond condition is %s, want bool", cv.Kind())
			}
			if cv.AsBool() {
				return a(args)
			}
			return b(args)
		}, nil
	case "abs":
		f := fns[0]
		return func(args []val.Value) (val.Value, error) {
			v, err := f(args)
			if err != nil {
				return val.Value{}, err
			}
			switch v.Kind() {
			case val.KindInt:
				n := v.AsInt()
				if n < 0 {
					n = -n
				}
				return val.Int(n), nil
			case val.KindFloat:
				return val.Float(math.Abs(v.AsFloat())), nil
			}
			return val.Value{}, errf(pos, "abs on %s value", v.Kind())
		}, nil
	case "str":
		f := fns[0]
		return func(args []val.Value) (val.Value, error) {
			v, err := f(args)
			if err != nil {
				return val.Value{}, err
			}
			return val.Str(Render(v)), nil
		}, nil
	case "num":
		f := fns[0]
		return func(args []val.Value) (val.Value, error) {
			v, err := f(args)
			if err != nil {
				return val.Value{}, err
			}
			return parseNum(pos, v)
		}, nil
	case "len":
		f := fns[0]
		return func(args []val.Value) (val.Value, error) {
			v, err := f(args)
			if err != nil {
				return val.Value{}, err
			}
			if v.Kind() != val.KindString {
				return val.Value{}, errf(pos, "len on %s value", v.Kind())
			}
			return val.Int(int64(len(v.AsStr()))), nil
		}, nil
	case "min", "max", "fst", "snd":
		// Rare in hot paths: delegate to the interpreter's builtin logic by
		// rebuilding a Call with literal arguments.
		fn := e.Fn
		return func(args []val.Value) (val.Value, error) {
			vs, err := evalArgs(args)
			if err != nil {
				return val.Value{}, err
			}
			lits := make([]Expr, len(vs))
			for i, v := range vs {
				lits[i] = &Lit{Pos: pos, V: v}
			}
			return evalCall(&Call{Pos: pos, Fn: fn, Args: lits}, nil)
		}, nil
	default:
		return nil, errf(pos, "%s cannot be compiled (bag operations are planned, not evaluated)", e.Fn)
	}
}

// Compile-aware UDF support: MakeUDF compiles lambda bodies once so that
// Call costs closure invocations, not AST walks.
func (u *UDF) ensureCompiled() error {
	if u.compiled != nil || u.native != nil {
		return nil
	}
	f, err := compileExpr(u.lambda.Body, u.lambda.Params)
	if err != nil {
		return err
	}
	u.compiled = f
	return nil
}

// udfLabel builds a short display label for a lambda.
func udfLabel(l *Lambda) string {
	var b strings.Builder
	formatExpr(&b, l, 0)
	s := b.String()
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}
