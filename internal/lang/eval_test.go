package lang

import (
	"strings"
	"testing"

	"github.com/mitos-project/mitos/internal/val"
)

// evalStr parses src as a single expression (via an assignment), then
// evaluates it with the given environment.
func evalStr(t *testing.T, src string, env map[string]val.Value) (val.Value, error) {
	t.Helper()
	p, err := Parse("x = " + src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	rhs := p.Stmts[0].(*AssignStmt).RHS
	return EvalScalar(rhs, func(name string) (val.Value, bool) {
		v, ok := env[name]
		return v, ok
	})
}

func mustEval(t *testing.T, src string, env map[string]val.Value) val.Value {
	t.Helper()
	v, err := evalStr(t, src, env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestEvalArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want val.Value
	}{
		{"1 + 2", val.Int(3)},
		{"7 - 2 * 3", val.Int(1)},
		{"7 / 2", val.Int(3)},
		{"7 % 3", val.Int(1)},
		{"7.0 / 2", val.Float(3.5)},
		{"1 + 2.5", val.Float(3.5)},
		{"-3 + 1", val.Int(-2)},
		{"2 * (3 + 4)", val.Int(14)},
		{"10.0 % 3.0", val.Float(1)},
	}
	for _, c := range cases {
		if got := mustEval(t, c.src, nil); !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalStringConcat(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`"a" + "b"`, "ab"},
		{`"log" + 7`, "log7"},
		{`7 + "log"`, "7log"},
		{`"v" + 1.5`, "v1.5"},
		{`"b" + true`, "btrue"},
	}
	for _, c := range cases {
		got := mustEval(t, c.src, nil)
		if got.Kind() != val.KindString || got.AsStr() != c.want {
			t.Errorf("%s = %v, want %q", c.src, got, c.want)
		}
	}
}

func TestEvalComparisons(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 4", false},
		{"4 >= 4", true},
		{"1 == 1.0", true}, // numeric coercion
		{"1 != 2", true},
		{`"a" < "b"`, true},
		{`"a" == "a"`, true},
		{`"a" != 1`, true}, // different kinds: unequal
		{`1 == true`, false},
	}
	for _, c := range cases {
		got := mustEval(t, c.src, nil)
		if got.Kind() != val.KindBool || got.AsBool() != c.want {
			t.Errorf("%s = %v, want %t", c.src, got, c.want)
		}
	}
}

func TestEvalBooleansShortCircuit(t *testing.T) {
	// Short-circuiting: the erroneous operand is never evaluated.
	if got := mustEval(t, "false && (1 / 0 == 0)", nil); got.AsBool() {
		t.Error("false && ... = true")
	}
	if got := mustEval(t, "true || (1 / 0 == 0)", nil); !got.AsBool() {
		t.Error("true || ... = false")
	}
	if got := mustEval(t, "!false", nil); !got.AsBool() {
		t.Error("!false = false")
	}
}

func TestEvalBuiltins(t *testing.T) {
	cases := []struct {
		src  string
		want val.Value
	}{
		{"abs(-5)", val.Int(5)},
		{"abs(2.5)", val.Float(2.5)},
		{"abs(-2.5)", val.Float(2.5)},
		{`str(42)`, val.Str("42")},
		{`str("s")`, val.Str("s")},
		{`str(1.5)`, val.Str("1.5")},
		{`num("42")`, val.Int(42)},
		{`num("2.5")`, val.Float(2.5)},
		{`num(7)`, val.Int(7)},
		{`len("abc")`, val.Int(3)},
		{"cond(1 < 2, 10, 20)", val.Int(10)},
		{"cond(1 > 2, 10, 20)", val.Int(20)},
		{"cond(true, (1, 2), (3, 4)).1", val.Int(2)},
		{"min(3, 5)", val.Int(3)},
		{"max(3, 5.5)", val.Float(5.5)},
		{"min(2.5, 7)", val.Float(2.5)},
	}
	for _, c := range cases {
		if got := mustEval(t, c.src, nil); !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalTuples(t *testing.T) {
	env := map[string]val.Value{"t": val.Tuple(val.Str("k"), val.Int(10), val.Int(20))}
	if got := mustEval(t, "t.0", env); !got.Equal(val.Str("k")) {
		t.Errorf("t.0 = %v", got)
	}
	if got := mustEval(t, "t.1 - t.2", env); !got.Equal(val.Int(-10)) {
		t.Errorf("t.1 - t.2 = %v", got)
	}
	if got := mustEval(t, "fst(t)", env); !got.Equal(val.Str("k")) {
		t.Errorf("fst(t) = %v", got)
	}
	if got := mustEval(t, "snd(t)", env); !got.Equal(val.Int(10)) {
		t.Errorf("snd(t) = %v", got)
	}
	if got := mustEval(t, "(1, 2).1", nil); !got.Equal(val.Int(2)) {
		t.Errorf("(1,2).1 = %v", got)
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"1 / 0", "division by zero"},
		{"1 % 0", "modulo by zero"},
		{`"a" - 1`, "'-' on"},
		{"-true", "unary '-'"},
		{"!1", "'!' on"},
		{"true && 1", "on int"},
		{`1 < "a"`, "cannot order"},
		{"true < false", ""}, // bools order fine via Compare? no: scalarCompare allows bool
		{"abs(true)", "abs on"},
		{`num("xyz")`, "cannot parse"},
		{"len(1)", "len on"},
		{"fst(1)", "fst on"},
		{"snd((1,))", ""}, // 1-tuple parses as paren; actually (1,) -> paren of 1 -> snd(1) errors
		{"undefinedVar + 1", "undefined variable"},
		{"(1, 2).5", "out of range"},
		{"1 .0", "field access on"},
		{`readFile("f")`, "compiled, not evaluated"},
	}
	for _, c := range cases {
		_, err := evalStr(t, c.src, nil)
		if c.wantSub == "" {
			continue // cases documenting permitted behaviour
		}
		if err == nil {
			t.Errorf("eval %q: expected error with %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("eval %q error = %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestUDFLambda(t *testing.T) {
	p := mustParse(t, "y = b.reduceByKey((a, c) => a + c)")
	m := p.Stmts[0].(*AssignStmt).RHS.(*Method)
	u, err := MakeUDF(m.Args[0])
	if err != nil {
		t.Fatal(err)
	}
	if u.Arity() != 2 {
		t.Fatalf("arity = %d", u.Arity())
	}
	got, err := u.Call(val.Int(3), val.Int(4))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(val.Int(7)) {
		t.Errorf("call = %v", got)
	}
	if _, err := u.Call(val.Int(1)); err == nil {
		t.Error("wrong arg count did not error")
	}
	if s := u.String(); !strings.Contains(s, "=>") {
		t.Errorf("String() = %q", s)
	}
}

func TestUDFNative(t *testing.T) {
	g := Native("double", 1, func(args []val.Value) val.Value {
		return val.Int(args[0].AsInt() * 2)
	})
	u, err := MakeUDF(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := u.Call(val.Int(21))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(val.Int(42)) {
		t.Errorf("native call = %v", got)
	}
	if s := u.String(); !strings.Contains(s, "double") {
		t.Errorf("String() = %q", s)
	}
}

func TestMakeUDFRejectsNonFunction(t *testing.T) {
	if _, err := MakeUDF(&Lit{V: val.Int(1)}); err == nil {
		t.Error("MakeUDF on literal did not error")
	}
}

func TestRender(t *testing.T) {
	cases := []struct {
		v    val.Value
		want string
	}{
		{val.Str("raw"), "raw"},
		{val.Int(-2), "-2"},
		{val.Float(0.5), "0.5"},
		{val.Bool(true), "true"},
		{val.Tuple(val.Int(1), val.Str("a")), `(1, "a")`},
	}
	for _, c := range cases {
		if got := Render(c.v); got != c.want {
			t.Errorf("Render(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestBuilderMatchesParsedScript(t *testing.T) {
	// Build the Visit Count inner computation with the builder API and
	// compare its formatted source against the parsed script version.
	b := NewBuilder()
	b.Assign("yesterdayCounts", EmptyBag())
	b.Assign("day", IntLit(1))
	b.DoWhile(func(body *Builder) {
		body.Assign("visits", ReadFile(Concat(StrLit("pageVisitLog"), Var("day"))))
		body.Assign("counts", ReduceByKey(
			MapBag(Var("visits"), Fn1("x", TupleOf(Var("x"), IntLit(1)))),
			Fn2("a", "b", Add(Var("a"), Var("b")))))
		body.If(Neq(Var("day"), IntLit(1)), func(then *Builder) {
			then.Assign("diffs", MapBag(
				JoinBags(Var("counts"), Var("yesterdayCounts")),
				Fn1("t", CallFn("abs", Sub(FieldOf(Var("t"), 1), FieldOf(Var("t"), 2))))))
			then.WriteFile(SumBag(Var("diffs")), Concat(StrLit("diff"), Var("day")))
		}, nil)
		body.Assign("yesterdayCounts", Var("counts"))
		body.Assign("day", Add(Var("day"), IntLit(1)))
	}, Leq(Var("day"), IntLit(365)))
	built := b.Program()

	parsed := mustParse(t, visitCountScript)
	if got, want := Format(built), Format(parsed); got != want {
		t.Errorf("builder and parser disagree:\nbuilder:\n%s\nparser:\n%s", got, want)
	}
	if _, err := Check(built); err != nil {
		t.Errorf("check(built): %v", err)
	}
}

func TestBuilderAllConstructors(t *testing.T) {
	// Touch every builder constructor once and make sure the result
	// formats and reparses.
	b := NewBuilder()
	b.Assign("a", Add(IntLit(1), FloatLit(2.5)))
	b.Assign("s", Concat(StrLit("x"), StrLit("y")))
	b.Assign("t", BoolLit(true))
	b.Assign("l", LitOf(val.Int(9)))
	b.Assign("m", Mul(Var("a"), Div(Var("a"), IntLit(2))))
	b.Assign("r", Mod(IntLit(7), IntLit(3)))
	b.Assign("c1", Eq(Var("a"), Var("m")))
	b.Assign("c2", Or(And(Neq(Var("a"), Var("m")), Lt(Var("a"), Var("m"))), Gt(Var("a"), Var("m"))))
	b.Assign("c3", And(Leq(Var("a"), Var("m")), Geq(Var("a"), Var("m"))))
	b.Assign("n", Neg(Var("a")))
	b.Assign("nb", Not(Var("t")))
	b.Assign("bag", ReadFile(StrLit("f")))
	b.Assign("bag2", FlatMapBag(Var("bag"), Fn1("x", TupleOf(Var("x"), Var("x")))))
	b.Assign("bag3", FilterBag(Var("bag"), Fn1("x", BoolLit(true))))
	b.Assign("bag4", UnionBags(CrossBags(Var("bag"), Var("bag2")), Var("bag3")))
	b.Assign("bag5", DistinctBag(Var("bag4")))
	b.Assign("agg", ReduceBag(CountBag(Var("bag5")), Fn2("x", "y", Add(Var("x"), Var("y")))))
	b.Assign("one", NewBag(Only(Var("agg"))))
	b.For("i", IntLit(1), IntLit(3), func(body *Builder) {
		body.Assign("z", Var("i"))
	})
	b.While(Lt(Var("a"), IntLit(10)), func(body *Builder) {
		body.Assign("a", Add(Var("a"), IntLit(1)))
	})
	b.WriteFile(Var("one"), StrLit("out"))
	prog := b.Program()
	src := Format(prog)
	if _, err := Parse(src); err != nil {
		t.Fatalf("reparse of built program failed: %v\n%s", err, src)
	}
	if _, err := Check(prog); err != nil {
		t.Fatalf("check of built program failed: %v\n%s", err, src)
	}
}
