package lang

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/mitos-project/mitos/internal/val"
)

// randomScalarExpr builds a random well-formed scalar expression over
// integer/float parameters p0, p1.
func randomScalarExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return &Lit{V: val.Int(r.Int63n(100) - 50)}
		case 1:
			return &Lit{V: val.Float(r.NormFloat64())}
		case 2:
			return &Ident{Name: "p0"}
		default:
			return &Ident{Name: "p1"}
		}
	}
	switch r.Intn(8) {
	case 0:
		return &Unary{Op: TokMinus, X: randomScalarExpr(r, depth-1)}
	case 1:
		ops := []TokKind{TokPlus, TokMinus, TokStar}
		return &Binary{Op: ops[r.Intn(len(ops))], X: randomScalarExpr(r, depth-1), Y: randomScalarExpr(r, depth-1)}
	case 2:
		cmps := []TokKind{TokEq, TokNeq, TokLt, TokLeq, TokGt, TokGeq}
		cmp := &Binary{Op: cmps[r.Intn(len(cmps))], X: randomScalarExpr(r, depth-1), Y: randomScalarExpr(r, depth-1)}
		return &Call{Fn: "cond", Args: []Expr{cmp, randomScalarExpr(r, depth-1), randomScalarExpr(r, depth-1)}}
	case 3:
		return &Call{Fn: "abs", Args: []Expr{randomScalarExpr(r, depth-1)}}
	case 4:
		return &Call{Fn: "min", Args: []Expr{randomScalarExpr(r, depth-1), randomScalarExpr(r, depth-1)}}
	case 5:
		return &Call{Fn: "max", Args: []Expr{randomScalarExpr(r, depth-1), randomScalarExpr(r, depth-1)}}
	case 6:
		return &Field{X: &TupleExpr{Elems: []Expr{randomScalarExpr(r, depth-1), randomScalarExpr(r, depth-1)}}, Index: r.Intn(2)}
	default:
		return &Call{Fn: "str", Args: []Expr{randomScalarExpr(r, depth-1)}}
	}
}

// TestCompiledMatchesInterpreter is the differential property test of the
// UDF closure compiler: for random expressions and arguments, the compiled
// form must produce exactly what the AST interpreter produces (value or
// error).
func TestCompiledMatchesInterpreter(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	params := []string{"p0", "p1"}
	for trial := 0; trial < 2000; trial++ {
		e := randomScalarExpr(r, 1+r.Intn(4))
		compiled, err := compileExpr(e, params)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		args := []val.Value{val.Int(r.Int63n(20) - 10), val.Float(r.NormFloat64())}
		env := func(name string) (val.Value, bool) {
			switch name {
			case "p0":
				return args[0], true
			case "p1":
				return args[1], true
			}
			return val.Value{}, false
		}
		want, wantErr := EvalScalar(e, env)
		got, gotErr := compiled(args)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error mismatch: interp=%v compiled=%v", trial, wantErr, gotErr)
		}
		if wantErr == nil && !got.Equal(want) {
			var b strings.Builder
			formatExpr(&b, e, 0)
			t.Fatalf("trial %d: %s with %v: interp=%v compiled=%v", trial, b.String(), args, want, got)
		}
	}
}

func TestCompiledShortCircuit(t *testing.T) {
	// (p0 == 0) || (10 / p0 > 1): compiled form must not divide by zero
	// when the left side is true.
	e := &Binary{Op: TokOr,
		X: &Binary{Op: TokEq, X: &Ident{Name: "p0"}, Y: &Lit{V: val.Int(0)}},
		Y: &Binary{Op: TokGt, X: &Binary{Op: TokSlash, X: &Lit{V: val.Int(10)}, Y: &Ident{Name: "p0"}}, Y: &Lit{V: val.Int(1)}},
	}
	f, err := compileExpr(e, []string{"p0"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f([]val.Value{val.Int(0)})
	if err != nil || !got.AsBool() {
		t.Errorf("short-circuit broken: %v, %v", got, err)
	}
	got, err = f([]val.Value{val.Int(2)})
	if err != nil || !got.AsBool() {
		t.Errorf("10/2 > 1 = %v, %v", got, err)
	}
	if _, err := f([]val.Value{val.Int(100)}); err != nil {
		t.Errorf("10/100 > 1 errored: %v", err)
	}
}

func TestCompileRejectsFreeVariables(t *testing.T) {
	e := &Ident{Name: "free"}
	if _, err := compileExpr(e, []string{"p0"}); err == nil {
		t.Error("free variable compiled")
	}
}

func TestCompileRejectsBagConstructs(t *testing.T) {
	e := &Call{Fn: "readFile", Args: []Expr{&Lit{V: val.Str("f")}}}
	if _, err := compileExpr(e, nil); err == nil {
		t.Error("bag construct compiled")
	}
}

func TestUDFLabelTruncated(t *testing.T) {
	long := Expr(&Ident{Name: "x"})
	for i := 0; i < 30; i++ {
		long = &Binary{Op: TokPlus, X: long, Y: &Ident{Name: "x"}}
	}
	u, err := MakeUDF(&Lambda{Params: []string{"x"}, Body: long})
	if err != nil {
		t.Fatal(err)
	}
	if len(u.label) > 64 {
		t.Errorf("label length = %d", len(u.label))
	}
}

func BenchmarkUDFCompiled(b *testing.B) {
	p, err := Parse("y = b.map(x => (x.0, abs(x.1 - x.2) * 2 + 1))")
	if err != nil {
		b.Fatal(err)
	}
	m := p.Stmts[0].(*AssignStmt).RHS.(*Method)
	u, err := MakeUDF(m.Args[0])
	if err != nil {
		b.Fatal(err)
	}
	arg := val.Tuple(val.Str("k"), val.Int(10), val.Int(25))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.Call(arg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUDFInterpreted(b *testing.B) {
	p, err := Parse("y = b.map(x => (x.0, abs(x.1 - x.2) * 2 + 1))")
	if err != nil {
		b.Fatal(err)
	}
	m := p.Stmts[0].(*AssignStmt).RHS.(*Method)
	body := m.Args[0].(*Lambda).Body
	arg := val.Tuple(val.Str("k"), val.Int(10), val.Int(25))
	env := func(name string) (val.Value, bool) {
		if name == "x" {
			return arg, true
		}
		return val.Value{}, false
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalScalar(body, env); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleUDF() {
	p, _ := Parse("y = b.map(x => x * 2 + 1)")
	m := p.Stmts[0].(*AssignStmt).RHS.(*Method)
	u, _ := MakeUDF(m.Args[0])
	v, _ := u.Call(val.Int(20))
	fmt.Println(v)
	// Output: 41
}
