package lang

import "fmt"

// Type classifies an expression as scalar (a single value such as a loop
// counter or a file name) or bag (a scalable collection). Only this
// distinction matters to the compiler; scalar values are dynamically typed.
type Type uint8

// The two expression types.
const (
	TypeScalar Type = iota
	TypeBag
)

// String returns "scalar" or "bag".
func (t Type) String() string {
	if t == TypeBag {
		return "bag"
	}
	return "scalar"
}

// Info holds the results of Check: the inferred Type of every expression.
type Info struct {
	Types map[Expr]Type
}

// TypeOf returns the inferred type of e. It panics if e was not part of the
// checked program.
func (in *Info) TypeOf(e Expr) Type {
	t, ok := in.Types[e]
	if !ok {
		panic(fmt.Sprintf("lang: TypeOf on unchecked expression %T", e))
	}
	return t
}

// Builtin call signatures: argument types and result type.
type builtinSig struct {
	args   []Type
	result Type
}

var builtins = map[string]builtinSig{
	"readFile": {[]Type{TypeScalar}, TypeBag},
	"newBag":   {[]Type{TypeScalar}, TypeBag},
	"empty":    {nil, TypeBag},
	"only":     {[]Type{TypeBag}, TypeScalar},
	"abs":      {[]Type{TypeScalar}, TypeScalar},
	"str":      {[]Type{TypeScalar}, TypeScalar},
	"num":      {[]Type{TypeScalar}, TypeScalar},
	"len":      {[]Type{TypeScalar}, TypeScalar},
	"min":      {[]Type{TypeScalar, TypeScalar}, TypeScalar},
	"max":      {[]Type{TypeScalar, TypeScalar}, TypeScalar},
	"fst":      {[]Type{TypeScalar}, TypeScalar},
	"snd":      {[]Type{TypeScalar}, TypeScalar},
	"cond":     {[]Type{TypeScalar, TypeScalar, TypeScalar}, TypeScalar},
}

// Bag method signatures: number of lambda args (with given arities, -1
// meaning a bag argument, -2 meaning a scalar argument) — encoded simply.
type methodSig struct {
	lambdaArity int  // arity of a lambda argument, 0 if none
	bagArg      bool // takes another bag as the (only) argument
	scalarArg   bool // takes a scalar argument (writeFile name)
	result      Type
}

var bagMethods = map[string]methodSig{
	"map":         {lambdaArity: 1, result: TypeBag},
	"flatMap":     {lambdaArity: 1, result: TypeBag},
	"filter":      {lambdaArity: 1, result: TypeBag},
	"reduceByKey": {lambdaArity: 2, result: TypeBag},
	"reduce":      {lambdaArity: 2, result: TypeBag},
	"join":        {bagArg: true, result: TypeBag},
	"deltaMerge":  {bagArg: true, lambdaArity: 2, result: TypeBag},
	"solution":    {result: TypeBag},
	"union":       {bagArg: true, result: TypeBag},
	"cross":       {bagArg: true, result: TypeBag},
	"sum":         {result: TypeBag},
	"count":       {result: TypeBag},
	"distinct":    {result: TypeBag},
	"writeFile":   {scalarArg: true, result: TypeBag}, // result unused; statement-only
}

// StaticType classifies e as scalar or bag from its syntactic shape and the
// types of the variables it references (resolved through varType). It
// assumes e is well-formed (see Check); unknown constructs classify as
// scalar. The lowering pass in internal/ir uses it to type synthetic
// expressions it creates during desugaring.
func StaticType(e Expr, varType func(name string) Type) Type {
	switch e := e.(type) {
	case *Ident:
		return varType(e.Name)
	case *Method:
		return TypeBag
	case *Call:
		if sig, ok := builtins[e.Fn]; ok {
			return sig.result
		}
		return TypeScalar
	default:
		return TypeScalar
	}
}

// Check resolves names and infers scalar/bag types for prog. It returns
// type information used by the compiler, or the first error found.
//
// The rules it enforces:
//   - every variable is assigned before use on every control-flow path;
//   - a variable has one type (scalar or bag) throughout the program;
//   - conditions of if/while/do-while are scalar;
//   - bag operations are applied to bags with correctly shaped arguments;
//   - lambda bodies reference only their own parameters (all data reaching a
//     UDF must flow through bag edges, as required by the dataflow model);
//   - writeFile is the only expression usable as a statement;
//   - break and continue appear only inside loops, as the last statement of
//     their block (code after them would be unreachable).
func Check(prog *Program) (*Info, error) {
	c := &checker{
		info:     &Info{Types: make(map[Expr]Type)},
		varTypes: make(map[string]Type),
	}
	assigned := make(map[string]bool)
	if _, err := c.checkStmts(prog.Stmts, assigned); err != nil {
		return nil, err
	}
	return c.info, nil
}

type checker struct {
	info      *Info
	varTypes  map[string]Type // flow-insensitive: one type per variable
	loopDepth int
	// loopJumps marks loop nesting levels containing a break or continue,
	// so do-while bodies that may exit early do not contribute to the
	// definitely-assigned set.
	loopJumps map[int]bool
}

// checkStmts threads the definitely-assigned set through a statement list.
// terminated reports that the list ends in break or continue: any further
// statements would be unreachable, and the list contributes nothing to the
// surrounding definite-assignment analysis.
func (c *checker) checkStmts(stmts []Stmt, assigned map[string]bool) (terminated bool, err error) {
	for i, s := range stmts {
		term, err := c.checkStmt(s, assigned)
		if err != nil {
			return false, err
		}
		if term {
			if i != len(stmts)-1 {
				return false, errf(stmts[i+1].StmtPos(), "unreachable code after break/continue")
			}
			return true, nil
		}
	}
	return false, nil
}

func (c *checker) checkStmt(s Stmt, assigned map[string]bool) (terminated bool, err error) {
	switch s := s.(type) {
	case *AssignStmt:
		t, err := c.checkExpr(s.RHS, assigned)
		if err != nil {
			return false, err
		}
		if old, ok := c.varTypes[s.Name]; ok && old != t {
			return false, errf(s.Pos, "variable %s was %s, cannot reassign as %s", s.Name, old, t)
		}
		c.varTypes[s.Name] = t
		assigned[s.Name] = true
		return false, nil
	case *IfStmt:
		if err := c.checkCond(s.Cond, assigned); err != nil {
			return false, err
		}
		thenSet := cloneSet(assigned)
		thenTerm, err := c.checkStmts(s.Then, thenSet)
		if err != nil {
			return false, err
		}
		elseSet := cloneSet(assigned)
		elseTerm, err := c.checkStmts(s.Else, elseSet)
		if err != nil {
			return false, err
		}
		// Definitely assigned after the if: contributions only from
		// branches that fall through.
		switch {
		case thenTerm && elseTerm:
			return true, nil
		case thenTerm:
			for k := range elseSet {
				assigned[k] = true
			}
		case elseTerm:
			for k := range thenSet {
				assigned[k] = true
			}
		default:
			for k := range thenSet {
				if elseSet[k] {
					assigned[k] = true
				}
			}
		}
		return false, nil
	case *WhileStmt:
		if s.PostTest {
			return false, c.checkDoWhile(s, assigned)
		}
		if err := c.checkCond(s.Cond, assigned); err != nil {
			return false, err
		}
		// The body may not run; check it against a copy.
		bodySet := cloneSet(assigned)
		c.loopDepth++
		_, err := c.checkStmts(s.Body, bodySet)
		delete(c.loopJumps, c.loopDepth) // jumps exit this loop, not a later one at the same depth
		c.loopDepth--
		return false, err
	case *ForStmt:
		if _, err := c.checkExprOfType(s.From, TypeScalar, assigned); err != nil {
			return false, err
		}
		if _, err := c.checkExprOfType(s.To, TypeScalar, assigned); err != nil {
			return false, err
		}
		if old, ok := c.varTypes[s.Var]; ok && old != TypeScalar {
			return false, errf(s.Pos, "loop variable %s was %s", s.Var, old)
		}
		c.varTypes[s.Var] = TypeScalar
		assigned[s.Var] = true
		bodySet := cloneSet(assigned)
		c.loopDepth++
		_, err := c.checkStmts(s.Body, bodySet)
		delete(c.loopJumps, c.loopDepth)
		c.loopDepth--
		return false, err
	case *ExprStmt:
		m, ok := s.X.(*Method)
		if !ok || m.Name != "writeFile" {
			return false, errf(s.StmtPos(), "only writeFile may be used as a statement")
		}
		_, err := c.checkExpr(s.X, assigned)
		return false, err
	case *BreakStmt:
		if c.loopDepth == 0 {
			return false, errf(s.Pos, "break outside a loop")
		}
		c.markLoopJump()
		return true, nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return false, errf(s.Pos, "continue outside a loop")
		}
		c.markLoopJump()
		return true, nil
	default:
		return false, errf(s.StmtPos(), "unknown statement type %T", s)
	}
}

func (c *checker) markLoopJump() {
	if c.loopJumps == nil {
		c.loopJumps = make(map[int]bool)
	}
	c.loopJumps[c.loopDepth] = true
}

// checkDoWhile handles post-test loops. Without break/continue the body
// definitely runs to its end before the condition, so its assignments flow
// through; with them, only a copy is checked (assignments after an early
// exit are not definite).
func (c *checker) checkDoWhile(s *WhileStmt, assigned map[string]bool) error {
	c.loopDepth++
	depth := c.loopDepth
	bodySet := cloneSet(assigned)
	_, err := c.checkStmts(s.Body, bodySet)
	c.loopDepth--
	if err != nil {
		return err
	}
	if !c.loopJumps[depth] {
		for k := range bodySet {
			assigned[k] = true
		}
		return c.checkCond(s.Cond, assigned)
	}
	delete(c.loopJumps, depth)
	return c.checkCond(s.Cond, bodySet)
}

func (c *checker) checkCond(e Expr, assigned map[string]bool) error {
	_, err := c.checkExprOfType(e, TypeScalar, assigned)
	return err
}

func (c *checker) checkExprOfType(e Expr, want Type, assigned map[string]bool) (Type, error) {
	t, err := c.checkExpr(e, assigned)
	if err != nil {
		return t, err
	}
	if t != want {
		return t, errf(e.ExprPos(), "expected %s expression, got %s", want, t)
	}
	return t, nil
}

func (c *checker) checkExpr(e Expr, assigned map[string]bool) (Type, error) {
	t, err := c.exprType(e, assigned)
	if err != nil {
		return t, err
	}
	c.info.Types[e] = t
	return t, nil
}

func (c *checker) exprType(e Expr, assigned map[string]bool) (Type, error) {
	switch e := e.(type) {
	case *Lit:
		return TypeScalar, nil
	case *Ident:
		if !assigned[e.Name] {
			return TypeScalar, errf(e.Pos, "variable %s used before assignment", e.Name)
		}
		return c.varTypes[e.Name], nil
	case *Unary:
		if _, err := c.checkExprOfType(e.X, TypeScalar, assigned); err != nil {
			return TypeScalar, err
		}
		return TypeScalar, nil
	case *Binary:
		if _, err := c.checkExprOfType(e.X, TypeScalar, assigned); err != nil {
			return TypeScalar, err
		}
		if _, err := c.checkExprOfType(e.Y, TypeScalar, assigned); err != nil {
			return TypeScalar, err
		}
		return TypeScalar, nil
	case *Call:
		sig, ok := builtins[e.Fn]
		if !ok {
			return TypeScalar, errf(e.Pos, "unknown function %s", e.Fn)
		}
		if len(e.Args) != len(sig.args) {
			return TypeScalar, errf(e.Pos, "%s expects %d argument(s), got %d", e.Fn, len(sig.args), len(e.Args))
		}
		for i, a := range e.Args {
			if _, err := c.checkExprOfType(a, sig.args[i], assigned); err != nil {
				return TypeScalar, err
			}
		}
		return sig.result, nil
	case *Method:
		return c.checkMethod(e, assigned)
	case *Lambda:
		return TypeScalar, errf(e.Pos, "lambda is only allowed as an argument of a bag operation")
	case *GoFunc:
		return TypeScalar, errf(e.Pos, "native function is only allowed as an argument of a bag operation")
	case *TupleExpr:
		for _, el := range e.Elems {
			if _, err := c.checkExprOfType(el, TypeScalar, assigned); err != nil {
				return TypeScalar, err
			}
		}
		return TypeScalar, nil
	case *Field:
		if _, err := c.checkExprOfType(e.X, TypeScalar, assigned); err != nil {
			return TypeScalar, err
		}
		return TypeScalar, nil
	default:
		return TypeScalar, errf(e.ExprPos(), "unknown expression type %T", e)
	}
}

func (c *checker) checkMethod(e *Method, assigned map[string]bool) (Type, error) {
	sig, ok := bagMethods[e.Name]
	if !ok {
		return TypeScalar, errf(e.Pos, "unknown bag operation %s", e.Name)
	}
	if _, err := c.checkExprOfType(e.Recv, TypeBag, assigned); err != nil {
		return TypeScalar, err
	}
	switch {
	case sig.bagArg && sig.lambdaArity > 0:
		// deltaMerge(delta, merge): a bag argument followed by a
		// commutative+associative merge function.
		if len(e.Args) != 2 {
			return TypeScalar, errf(e.Pos, "%s expects a bag argument and a function argument", e.Name)
		}
		if _, err := c.checkExprOfType(e.Args[0], TypeBag, assigned); err != nil {
			return TypeScalar, err
		}
		return sig.result, c.checkUDF(e.Args[1], sig.lambdaArity, e.Name)
	case sig.lambdaArity > 0:
		if len(e.Args) != 1 {
			return TypeScalar, errf(e.Pos, "%s expects one function argument", e.Name)
		}
		return sig.result, c.checkUDF(e.Args[0], sig.lambdaArity, e.Name)
	case sig.bagArg:
		if len(e.Args) != 1 {
			return TypeScalar, errf(e.Pos, "%s expects one bag argument", e.Name)
		}
		if _, err := c.checkExprOfType(e.Args[0], TypeBag, assigned); err != nil {
			return TypeScalar, err
		}
		return sig.result, nil
	case sig.scalarArg:
		if len(e.Args) != 1 {
			return TypeScalar, errf(e.Pos, "%s expects one argument", e.Name)
		}
		if _, err := c.checkExprOfType(e.Args[0], TypeScalar, assigned); err != nil {
			return TypeScalar, err
		}
		return sig.result, nil
	default:
		if len(e.Args) != 0 {
			return TypeScalar, errf(e.Pos, "%s expects no arguments", e.Name)
		}
		return sig.result, nil
	}
}

// checkUDF validates a lambda or native function used as a UDF of op.
func (c *checker) checkUDF(arg Expr, arity int, op string) error {
	switch fn := arg.(type) {
	case *Lambda:
		if len(fn.Params) != arity {
			return errf(fn.Pos, "%s function must take %d parameter(s), has %d", op, arity, len(fn.Params))
		}
		seen := make(map[string]bool, arity)
		for _, p := range fn.Params {
			if seen[p] {
				return errf(fn.Pos, "duplicate lambda parameter %s", p)
			}
			seen[p] = true
		}
		// The body is checked in an environment containing only the
		// parameters: UDFs must not capture outer variables.
		env := make(map[string]bool, arity)
		saved := make(map[string]Type, arity)
		hadType := make(map[string]bool, arity)
		for _, p := range fn.Params {
			env[p] = true
			if t, ok := c.varTypes[p]; ok {
				saved[p], hadType[p] = t, true
			}
			c.varTypes[p] = TypeScalar
		}
		_, err := c.checkExprOfType(fn.Body, TypeScalar, env)
		for _, p := range fn.Params {
			if hadType[p] {
				c.varTypes[p] = saved[p]
			} else {
				delete(c.varTypes, p)
			}
		}
		if err != nil {
			if le, ok := err.(*Error); ok {
				return errf(le.Pos, "in %s function: %s (UDFs may reference only their parameters)", op, le.Msg)
			}
			return err
		}
		c.info.Types[fn] = TypeScalar
		return nil
	case *GoFunc:
		if fn.Arity != arity {
			return errf(fn.Pos, "%s function must take %d parameter(s), native %s takes %d", op, arity, fn.Label, fn.Arity)
		}
		c.info.Types[fn] = TypeScalar
		return nil
	default:
		return errf(arg.ExprPos(), "%s expects a function argument", op)
	}
}

func cloneSet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
