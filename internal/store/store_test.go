package store

import (
	"errors"
	"testing"

	"github.com/mitos-project/mitos/internal/val"
)

func TestMemStoreRoundtrip(t *testing.T) {
	s := NewMemStore()
	elems := []val.Value{val.Int(1), val.Str("a")}
	if err := s.WriteDataset("d", elems); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadDataset("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Equal(elems[0]) || !got[1].Equal(elems[1]) {
		t.Errorf("roundtrip = %v", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestMemStoreIsolation(t *testing.T) {
	// Mutating the written slice or the read result must not affect the
	// stored data.
	s := NewMemStore()
	elems := []val.Value{val.Int(1)}
	s.WriteDataset("d", elems)
	elems[0] = val.Int(99)
	got, _ := s.ReadDataset("d")
	if !got[0].Equal(val.Int(1)) {
		t.Error("store aliases the writer's slice")
	}
	got[0] = val.Int(42)
	again, _ := s.ReadDataset("d")
	if !again[0].Equal(val.Int(1)) {
		t.Error("store aliases the reader's slice")
	}
}

func TestNotFoundError(t *testing.T) {
	s := NewMemStore()
	_, err := s.ReadDataset("missing")
	var nf *NotFoundError
	if !errors.As(err, &nf) || nf.Name != "missing" {
		t.Errorf("err = %v", err)
	}
	if nf.Error() == "" {
		t.Error("empty error message")
	}
}

func TestNamesSorted(t *testing.T) {
	s := NewMemStore()
	for _, n := range []string{"c", "a", "b"} {
		s.WriteDataset(n, nil)
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("Names = %v", names)
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	s := NewMemStore()
	done := make(chan struct{}, 10)
	for i := 0; i < 10; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				if i%2 == 0 {
					s.WriteDataset("d", []val.Value{val.Int(int64(j))})
				} else {
					s.ReadDataset("d")
				}
			}
		}(i)
	}
	for i := 0; i < 10; i++ {
		<-done
	}
}
