// Package store defines the dataset storage interface through which Mitos
// programs read and write named datasets (the paper's HDFS files), plus a
// trivial in-memory implementation used by tests and the reference
// interpreters. The distributed, partitioned implementation lives in
// internal/dfs.
package store

import (
	"fmt"
	"sort"
	"sync"

	"github.com/mitos-project/mitos/internal/val"
)

// Store is the dataset storage interface. Implementations must be safe for
// concurrent use.
type Store interface {
	// ReadDataset returns all elements of the named dataset.
	ReadDataset(name string) ([]val.Value, error)
	// WriteDataset replaces the named dataset with elems.
	WriteDataset(name string, elems []val.Value) error
}

// PartitionedReader is the optional fast path for partitioned reads: a
// reader instance fetches only its own partition instead of the whole
// dataset. Partitions must be disjoint and cover the dataset. The
// distributed runtime uses it when the store provides it (internal/dfs
// does); otherwise it falls back to striding over ReadDataset.
type PartitionedReader interface {
	ReadDatasetPartition(name string, part, parts int) ([]val.Value, error)
}

// NotFoundError reports a read of a missing dataset.
type NotFoundError struct {
	Name string
}

// Error implements the error interface.
func (e *NotFoundError) Error() string {
	return fmt.Sprintf("store: dataset %q not found", e.Name)
}

// MemStore is an in-memory Store.
type MemStore struct {
	mu   sync.RWMutex
	data map[string][]val.Value
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{data: make(map[string][]val.Value)}
}

// ReadDataset implements Store.
func (s *MemStore) ReadDataset(name string) ([]val.Value, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	elems, ok := s.data[name]
	if !ok {
		return nil, &NotFoundError{Name: name}
	}
	out := make([]val.Value, len(elems))
	copy(out, elems)
	return out, nil
}

// WriteDataset implements Store.
func (s *MemStore) WriteDataset(name string, elems []val.Value) error {
	cp := make([]val.Value, len(elems))
	copy(cp, elems)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[name] = cp
	return nil
}

// Names returns the dataset names present, sorted.
func (s *MemStore) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.data))
	for n := range s.data {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of datasets present.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}
