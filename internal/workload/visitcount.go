// Package workload provides the paper's evaluation workloads: the Visit
// Count task of Sec. 2 in its three variants (plain, with day-over-day
// diffs, with the loop-invariant pageTypes join), implemented for every
// system under comparison, plus deterministic input generators and the
// iteration-step-overhead microbenchmark of Fig. 7.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/mitos-project/mitos/internal/cluster"
	"github.com/mitos-project/mitos/internal/core"
	"github.com/mitos-project/mitos/internal/flinklike"
	"github.com/mitos-project/mitos/internal/ir"
	"github.com/mitos-project/mitos/internal/lang"
	"github.com/mitos-project/mitos/internal/sparklike"
	"github.com/mitos-project/mitos/internal/store"
	"github.com/mitos-project/mitos/internal/val"
)

// VisitCountSpec parameterizes the Visit Count task. The paper uses 365
// days of 21 MB logs; tests and benchmarks scale Days and VisitsPerDay.
type VisitCountSpec struct {
	Days         int
	VisitsPerDay int
	Pages        int // page-ID universe; visits are uniform over it
	WithDiff     bool
	// WithPageTypes joins each day's visits with the loop-invariant
	// pageTypes dataset and keeps only "article" pages.
	WithPageTypes bool
	// PageTypesSize is the number of entries in the pageTypes dataset
	// (defaults to Pages). Entries beyond the page universe exercise the
	// build side without matching — the knob Fig. 8 sweeps.
	PageTypesSize int
	Seed          int64
}

func (s VisitCountSpec) pageTypesSize() int {
	if s.PageTypesSize > 0 {
		return s.PageTypesSize
	}
	return s.Pages
}

// Generate writes the input datasets: pageVisitLog1..Days and (when
// WithPageTypes) pageTypes. Generation is deterministic in Seed.
func (s VisitCountSpec) Generate(st store.Store) error {
	r := rand.New(rand.NewSource(s.Seed))
	for day := 1; day <= s.Days; day++ {
		elems := make([]val.Value, s.VisitsPerDay)
		for i := range elems {
			elems[i] = val.Str(pageID(r.Intn(s.Pages)))
		}
		if err := st.WriteDataset(fmt.Sprintf("pageVisitLog%d", day), elems); err != nil {
			return err
		}
	}
	if s.WithPageTypes {
		n := s.pageTypesSize()
		types := make([]val.Value, n)
		for i := range types {
			t := "article"
			if i%3 == 0 {
				t = "index"
			}
			types[i] = val.Pair(val.Str(pageID(i)), val.Str(t))
		}
		if err := st.WriteDataset("pageTypes", types); err != nil {
			return err
		}
	}
	return nil
}

func pageID(i int) string { return fmt.Sprintf("page%d", i) }

// Script returns the Mitos program for the spec — the imperative source of
// the paper's Sec. 2 example.
func (s VisitCountSpec) Script() string {
	src := "yesterdayCounts = empty()\n"
	if s.WithPageTypes {
		src += `pageTypes = readFile("pageTypes")` + "\n"
	}
	src += "day = 1\ndo {\n"
	if s.WithPageTypes {
		// The static pageTypes dataset is the hash-join build side, so
		// loop-invariant hoisting builds its table once (paper Sec. 5.3).
		src += `  rawVisits = readFile("pageVisitLog" + day)
  tagged = pageTypes.join(rawVisits.map(x => (x, 1)))
  visits = tagged.filter(t => t.1 == "article").map(t => t.0)
`
	} else {
		src += `  visits = readFile("pageVisitLog" + day)` + "\n"
	}
	src += "  counts = visits.map(x => (x, 1)).reduceByKey((a, b) => a + b)\n"
	if s.WithDiff {
		src += `  if (day != 1) {
    diffs = counts.join(yesterdayCounts).map(t => abs(t.1 - t.2))
    diffs.sum().writeFile("diff" + day)
  }
`
	} else {
		src += `  counts.writeFile("counts" + day)` + "\n"
	}
	src += `  yesterdayCounts = counts
  day = day + 1
} while (day <= ` + fmt.Sprint(s.Days) + ")\n"
	return src
}

// CompileMitos compiles the spec's script to SSA.
func (s VisitCountSpec) CompileMitos() (*ir.Graph, error) {
	prog, err := lang.Parse(s.Script())
	if err != nil {
		return nil, err
	}
	if _, err := lang.Check(prog); err != nil {
		return nil, err
	}
	return ir.CompileToSSA(prog)
}

// RunMitos executes the Visit Count task on the Mitos runtime.
func RunMitos(s VisitCountSpec, st store.Store, cl *cluster.Cluster, opts core.Options) (*core.Result, error) {
	g, err := s.CompileMitos()
	if err != nil {
		return nil, err
	}
	return core.Execute(g, st, cl, opts)
}

// RunSpark executes the Visit Count task Spark-style: imperative control
// flow in the driver, one job launch per action, no cross-job operator
// state. The loop-invariant pageTypes RDD is repartitioned and cached once
// before the loop, as the paper's Spark implementation does — but the join
// hash table is still rebuilt every step.
func RunSpark(s VisitCountSpec, st store.Store, cl *cluster.Cluster) error {
	sess := sparklike.NewSession(cl, st)
	var pageTypes *sparklike.RDD
	if s.WithPageTypes {
		pageTypes = sess.ReadFile("pageTypes").Cache()
		// Materialize the cached partitioning once, before the loop.
		if _, err := pageTypes.Count(); err != nil {
			return err
		}
	}
	var yesterday *sparklike.RDD
	for day := 1; day <= s.Days; day++ {
		visits := sess.ReadFile(fmt.Sprintf("pageVisitLog%d", day))
		if s.WithPageTypes {
			tagged := pageTypes.Join(visits.Map(func(x val.Value) (val.Value, error) {
				return val.Pair(x, val.Int(1)), nil
			}))
			visits = tagged.
				Filter(func(t val.Value) (bool, error) {
					return t.Field(1).Equal(val.Str("article")), nil
				}).
				Map(func(t val.Value) (val.Value, error) { return t.Field(0), nil })
		}
		counts := visits.
			Map(func(x val.Value) (val.Value, error) { return val.Pair(x, val.Int(1)), nil }).
			ReduceByKey(func(a, b val.Value) (val.Value, error) {
				return val.Int(a.AsInt() + b.AsInt()), nil
			}).
			Cache()
		if s.WithDiff {
			if day != 1 {
				diffs := counts.Join(yesterday).Map(func(t val.Value) (val.Value, error) {
					d := t.Field(1).AsInt() - t.Field(2).AsInt()
					if d < 0 {
						d = -d
					}
					return val.Int(d), nil
				})
				sum, err := diffs.Sum() // action: launches a job
				if err != nil {
					return err
				}
				if err := st.WriteDataset(fmt.Sprintf("diff%d", day), []val.Value{sum}); err != nil {
					return err
				}
			} else if _, err := counts.Count(); err != nil { // materialize day 1
				return err
			}
		} else {
			if err := counts.SaveAsFile(fmt.Sprintf("counts%d", day)); err != nil {
				return err
			}
		}
		yesterday = counts
	}
	return nil
}

// RunFlinkNative executes Visit Count with flinklike's native iteration:
// one job, superstep barriers, loop-invariant hoisting via JoinStatic. The
// per-step file reads use the lenient step-indexed source (Flink's real
// API cannot express them — paper Sec. 2).
func RunFlinkNative(s VisitCountSpec, st store.Store, cl *cluster.Cluster, env *flinklike.Env) error {
	if env == nil {
		env = flinklike.NewEnv(cl, st)
	}
	var pageTypes *flinklike.DataSet
	if s.WithPageTypes {
		pageTypes = env.ReadFile("pageTypes")
	}
	initial := env.FromSlice(nil)
	_, err := env.Iterate(initial, s.Days, func(day int, yesterday *flinklike.DataSet) (*flinklike.DataSet, error) {
		visits := env.ReadFile(fmt.Sprintf("pageVisitLog%d", day))
		if s.WithPageTypes {
			tagged := visits.Map(func(x val.Value) (val.Value, error) {
				return val.Pair(x, val.Int(1)), nil
			}).JoinStatic(pageTypes) // (key, staticType, 1); table built once
			visits = tagged.
				Filter(func(t val.Value) (bool, error) {
					return t.Field(1).Equal(val.Str("article")), nil
				}).
				Map(func(t val.Value) (val.Value, error) { return t.Field(0), nil })
		}
		counts := visits.
			Map(func(x val.Value) (val.Value, error) { return val.Pair(x, val.Int(1)), nil }).
			ReduceByKey(func(a, b val.Value) (val.Value, error) {
				return val.Int(a.AsInt() + b.AsInt()), nil
			})
		if s.WithDiff {
			if day != 1 {
				diffs := counts.Join(yesterday).Map(func(t val.Value) (val.Value, error) {
					d := t.Field(1).AsInt() - t.Field(2).AsInt()
					if d < 0 {
						d = -d
					}
					return val.Int(d), nil
				})
				sum, err := diffs.Sum()
				if err != nil {
					return nil, err
				}
				if err := st.WriteDataset(fmt.Sprintf("diff%d", day), []val.Value{sum}); err != nil {
					return nil, err
				}
			}
		} else {
			if err := counts.WriteFile(fmt.Sprintf("counts%d", day)); err != nil {
				return nil, err
			}
		}
		return counts, nil
	})
	return err
}

// RunFlinkSeparateJobs executes Visit Count without native iterations: a
// fresh environment (= a fresh job launch) per day, like Spark but on the
// Flink-style API. No operator state survives between days.
func RunFlinkSeparateJobs(s VisitCountSpec, st store.Store, cl *cluster.Cluster) error {
	var yesterdayCounts []val.Value
	for day := 1; day <= s.Days; day++ {
		env := flinklike.NewEnv(cl, st)
		visits := env.ReadFile(fmt.Sprintf("pageVisitLog%d", day))
		if s.WithPageTypes {
			pageTypes := env.ReadFile("pageTypes")
			tagged := pageTypes.Join(visits.Map(func(x val.Value) (val.Value, error) {
				return val.Pair(x, val.Int(1)), nil
			}))
			visits = tagged.
				Filter(func(t val.Value) (bool, error) {
					return t.Field(1).Equal(val.Str("article")), nil
				}).
				Map(func(t val.Value) (val.Value, error) { return t.Field(0), nil })
		}
		counts := visits.
			Map(func(x val.Value) (val.Value, error) { return val.Pair(x, val.Int(1)), nil }).
			ReduceByKey(func(a, b val.Value) (val.Value, error) {
				return val.Int(a.AsInt() + b.AsInt()), nil
			})
		if s.WithDiff {
			if day != 1 {
				yesterday := env.FromSlice(yesterdayCounts)
				diffs := counts.Join(yesterday).Map(func(t val.Value) (val.Value, error) {
					d := t.Field(1).AsInt() - t.Field(2).AsInt()
					if d < 0 {
						d = -d
					}
					return val.Int(d), nil
				})
				sum, err := diffs.Sum()
				if err != nil {
					return err
				}
				if err := st.WriteDataset(fmt.Sprintf("diff%d", day), []val.Value{sum}); err != nil {
					return err
				}
			}
			collected, err := counts.Collect()
			if err != nil {
				return err
			}
			yesterdayCounts = collected
		} else {
			if err := counts.WriteFile(fmt.Sprintf("counts%d", day)); err != nil {
				return err
			}
		}
	}
	return nil
}
