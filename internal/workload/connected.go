// Connected components as a delta iteration: the workload behind the
// delta/workset benchmark. The graph is built so the workset shrinks
// sharply while the solution set stays large — the regime where
// incremental maintenance wins: a sea of two-node components converges in
// the first couple of steps, while a handful of long path components keep
// the loop running for LongLen more steps with a tiny frontier. Full
// re-derivation (-delta=off) rebuilds the whole label index on every one
// of those near-empty steps; incremental maintenance touches only the
// frontier's keys.
package workload

import (
	"fmt"

	"github.com/mitos-project/mitos/internal/cluster"
	"github.com/mitos-project/mitos/internal/core"
	"github.com/mitos-project/mitos/internal/ir"
	"github.com/mitos-project/mitos/internal/lang"
	"github.com/mitos-project/mitos/internal/store"
	"github.com/mitos-project/mitos/internal/val"
)

// ConnectedSpec describes the benchmark graph.
type ConnectedSpec struct {
	// PairChains is the number of two-node components (converged after the
	// second step); they make the solution set large.
	PairChains int
	// LongChains path components of LongLen nodes each keep a small
	// frontier alive for LongLen steps — the loop's long tail.
	LongChains int
	LongLen    int
}

// Nodes is the total node count.
func (s ConnectedSpec) Nodes() int { return 2*s.PairChains + s.LongChains*s.LongLen }

// Generate writes the "nodes" and (undirected, so both directions)
// "edges" datasets.
func (s ConnectedSpec) Generate(st store.Store) error {
	nodes := make([]val.Value, 0, s.Nodes())
	var edges []val.Value
	link := func(u, v int) {
		edges = append(edges,
			val.Pair(val.Int(int64(u)), val.Int(int64(v))),
			val.Pair(val.Int(int64(v)), val.Int(int64(u))))
	}
	id := 0
	for c := 0; c < s.PairChains; c++ {
		nodes = append(nodes, val.Int(int64(id)), val.Int(int64(id+1)))
		link(id, id+1)
		id += 2
	}
	for c := 0; c < s.LongChains; c++ {
		for i := 0; i < s.LongLen; i++ {
			nodes = append(nodes, val.Int(int64(id+i)))
			if i > 0 {
				link(id+i-1, id+i)
			}
		}
		id += s.LongLen
	}
	if err := st.WriteDataset("nodes", nodes); err != nil {
		return err
	}
	return st.WriteDataset("edges", edges)
}

// ConnectedScript is the connected-components delta iteration: labels
// start as node IDs, deltaMerge keeps the per-node minimum in the indexed
// solution set, and each step joins only the changed labels against the
// edges. The loop exits when a step changes nothing.
const ConnectedScript = `
edges = readFile("edges")
nodes = readFile("nodes")
d = nodes.map(x => (x, x))
do {
  w = empty().deltaMerge(d, (a, b) => min(a, b))
  d = edges.join(w).map(t => (t.1, t.2))
  n = only(w.count())
} while (n > 0)
comp = w.solution()
comp.writeFile("components")
`

// CompileMitos compiles the connected-components script to SSA.
func (s ConnectedSpec) CompileMitos() (*ir.Graph, error) {
	prog, err := lang.Parse(ConnectedScript)
	if err != nil {
		return nil, err
	}
	if _, err := lang.Check(prog); err != nil {
		return nil, err
	}
	return ir.CompileToSSA(prog)
}

// RunConnected executes connected components on the Mitos runtime and
// verifies the labeling: every node of a pair component must carry the
// pair's smaller ID, every node of a long chain its chain's first ID.
func RunConnected(s ConnectedSpec, st store.Store, cl *cluster.Cluster, opts core.Options) (*core.Result, error) {
	g, err := s.CompileMitos()
	if err != nil {
		return nil, err
	}
	res, err := core.Execute(g, st, cl, opts)
	if err != nil {
		return nil, err
	}
	comp, err := st.ReadDataset("components")
	if err != nil {
		return nil, err
	}
	if len(comp) != s.Nodes() {
		return nil, fmt.Errorf("workload: %d labeled nodes, want %d", len(comp), s.Nodes())
	}
	pairNodes := 2 * s.PairChains
	for _, p := range comp {
		u, label := p.Field(0).AsInt(), p.Field(1).AsInt()
		want := u - u%2 // pair component: the even ID
		if u >= int64(pairNodes) {
			want = u - (u-int64(pairNodes))%int64(s.LongLen) // chain head
		}
		if label != want {
			return nil, fmt.Errorf("workload: node %d labeled %d, want %d", u, label, want)
		}
	}
	return res, nil
}
