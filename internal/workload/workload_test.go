package workload

import (
	"fmt"
	"testing"

	"github.com/mitos-project/mitos/internal/bag"
	"github.com/mitos-project/mitos/internal/cluster"
	"github.com/mitos-project/mitos/internal/core"
	"github.com/mitos-project/mitos/internal/ir"
	"github.com/mitos-project/mitos/internal/lang"
	"github.com/mitos-project/mitos/internal/obs"
	"github.com/mitos-project/mitos/internal/store"
)

// groundTruth runs the Mitos script through the AST interpreter.
func groundTruth(t *testing.T, spec VisitCountSpec) *store.MemStore {
	t.Helper()
	st := store.NewMemStore()
	if err := spec.Generate(st); err != nil {
		t.Fatal(err)
	}
	prog, err := lang.Parse(spec.Script())
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, spec.Script())
	}
	if err := ir.RunAST(prog, st); err != nil {
		t.Fatalf("AST interpreter: %v", err)
	}
	return st
}

func freshStore(t *testing.T, spec VisitCountSpec) *store.MemStore {
	t.Helper()
	st := store.NewMemStore()
	if err := spec.Generate(st); err != nil {
		t.Fatal(err)
	}
	return st
}

func diffOutputs(t *testing.T, want, got *store.MemStore) {
	t.Helper()
	for _, name := range want.Names() {
		we, _ := want.ReadDataset(name)
		ge, err := got.ReadDataset(name)
		if err != nil {
			t.Errorf("dataset %q missing: %v", name, err)
			continue
		}
		if !bag.Equal(we, ge) {
			t.Errorf("dataset %q differs:\n want %v\n got  %v", name, bag.Sorted(we), bag.Sorted(ge))
		}
	}
}

var specs = []VisitCountSpec{
	{Days: 4, VisitsPerDay: 60, Pages: 10, Seed: 21},
	{Days: 5, VisitsPerDay: 80, Pages: 12, WithDiff: true, Seed: 22},
	{Days: 4, VisitsPerDay: 70, Pages: 9, WithDiff: true, WithPageTypes: true, Seed: 23},
	{Days: 3, VisitsPerDay: 50, Pages: 8, WithPageTypes: true, PageTypesSize: 20, Seed: 24},
}

// TestAllSystemsAgree checks that every system produces identical outputs
// for every Visit Count variant — the cross-system correctness requirement
// behind all the paper's performance comparisons.
func TestAllSystemsAgree(t *testing.T) {
	for si, spec := range specs {
		spec := spec
		want := groundTruth(t, spec)
		runners := []struct {
			name string
			run  func(st *store.MemStore, cl *cluster.Cluster) error
		}{
			{"mitos", func(st *store.MemStore, cl *cluster.Cluster) error {
				_, err := RunMitos(spec, st, cl, core.DefaultOptions())
				return err
			}},
			{"mitos-nopipe-nohoist", func(st *store.MemStore, cl *cluster.Cluster) error {
				_, err := RunMitos(spec, st, cl, core.Options{})
				return err
			}},
			{"spark", RunSparkAdapter(spec)},
			{"flink-native", func(st *store.MemStore, cl *cluster.Cluster) error {
				return RunFlinkNative(spec, st, cl, nil)
			}},
			{"flink-separate", func(st *store.MemStore, cl *cluster.Cluster) error {
				return RunFlinkSeparateJobs(spec, st, cl)
			}},
		}
		for _, r := range runners {
			t.Run(fmt.Sprintf("spec%d/%s", si, r.name), func(t *testing.T) {
				t.Parallel()
				cl, err := cluster.New(cluster.FastConfig(3))
				if err != nil {
					t.Fatal(err)
				}
				defer cl.Close()
				st := freshStore(t, spec)
				if err := r.run(st, cl); err != nil {
					t.Fatalf("%s: %v", r.name, err)
				}
				diffOutputs(t, want, st)
			})
		}
	}
}

// RunSparkAdapter adapts RunSpark to the test runner signature.
func RunSparkAdapter(spec VisitCountSpec) func(st *store.MemStore, cl *cluster.Cluster) error {
	return func(st *store.MemStore, cl *cluster.Cluster) error {
		return RunSpark(spec, st, cl)
	}
}

func TestSparkLaunchesJobPerStep(t *testing.T) {
	spec := specs[1] // with diff: one action per day from day 2, plus day-1 materialization
	cl, err := cluster.New(cluster.FastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st := freshStore(t, spec)
	if err := RunSpark(spec, st, cl); err != nil {
		t.Fatal(err)
	}
	jobs := cl.Stats().JobsLaunched
	if jobs < int64(spec.Days) {
		t.Errorf("Spark launched %d jobs for %d days, want >= one per day", jobs, spec.Days)
	}
}

func TestFlinkNativeLaunchesOneJob(t *testing.T) {
	spec := specs[1]
	cl, err := cluster.New(cluster.FastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st := freshStore(t, spec)
	if err := RunFlinkNative(spec, st, cl, nil); err != nil {
		t.Fatal(err)
	}
	stats := cl.Stats()
	if stats.JobsLaunched != 1 {
		t.Errorf("Flink native launched %d jobs, want 1", stats.JobsLaunched)
	}
	if stats.Barriers < int64(spec.Days) {
		t.Errorf("Flink native ran %d barriers for %d supersteps", stats.Barriers, spec.Days)
	}
}

func TestMitosLaunchesNoPerStepJobs(t *testing.T) {
	spec := specs[1]
	cl, err := cluster.New(cluster.FastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st := freshStore(t, spec)
	if _, err := RunMitos(spec, st, cl, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	stats := cl.Stats()
	if stats.JobsLaunched != 0 {
		t.Errorf("Mitos launched %d cluster jobs (the dataflow job is one submission, not per-step)", stats.JobsLaunched)
	}
	if stats.Barriers != 0 {
		t.Errorf("pipelined Mitos ran %d barriers, want 0", stats.Barriers)
	}
	if stats.CtrlMessages == 0 {
		t.Error("Mitos sent no control messages; the CFM broadcast is not wired")
	}
}

func TestMitosNonPipelinedUsesBarriers(t *testing.T) {
	spec := specs[0]
	cl, err := cluster.New(cluster.FastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st := freshStore(t, spec)
	opts := core.Options{Pipelining: false, Hoisting: true}
	if _, err := RunMitos(spec, st, cl, opts); err != nil {
		t.Fatal(err)
	}
	if cl.Stats().Barriers == 0 {
		t.Error("non-pipelined Mitos ran no barriers")
	}
}

func TestStepBenchesAllSystems(t *testing.T) {
	const steps = 5
	cl, err := cluster.New(cluster.FastConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cases := []struct {
		name string
		run  func() error
	}{
		{"mitos", func() error {
			_, err := StepMitos(cl, store.NewMemStore(), steps, core.DefaultOptions())
			return err
		}},
		{"spark", func() error { return StepSpark(cl, store.NewMemStore(), steps) }},
		{"flink-separate", func() error { return StepFlinkSeparateJobs(cl, store.NewMemStore(), steps) }},
		{"flink-native", func() error { return StepFlinkNative(cl, store.NewMemStore(), steps, nil) }},
		{"naiad", func() error { return StepNaiad(cl, steps) }},
		{"tf", func() error { return StepTF(cl, steps) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStepMitosWritesResult(t *testing.T) {
	cl, err := cluster.New(cluster.FastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st := store.NewMemStore()
	res, err := StepMitos(cl, st, 7, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.ChainedEdges == 0 {
		t.Error("ChainedEdges = 0: default options should chain the step loop")
	}
	out, err := st.ReadDataset("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].AsInt() != 7 {
		t.Errorf("out = %v, want [7]", out)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := specs[2]
	a, b := store.NewMemStore(), store.NewMemStore()
	if err := spec.Generate(a); err != nil {
		t.Fatal(err)
	}
	if err := spec.Generate(b); err != nil {
		t.Fatal(err)
	}
	for _, name := range a.Names() {
		ae, _ := a.ReadDataset(name)
		be, err := b.ReadDataset(name)
		if err != nil || !bag.Equal(ae, be) {
			t.Errorf("dataset %q not deterministic", name)
		}
	}
}

func TestScriptCompiles(t *testing.T) {
	for si, spec := range specs {
		if _, err := spec.CompileMitos(); err != nil {
			t.Errorf("spec %d script does not compile: %v\n%s", si, err, spec.Script())
		}
	}
}

// TestCombinersShrinkReduceByKeyShuffles is the headline byte-level claim
// of the map-side combiner rewrite: on Visit Count across multiple
// machines, the bytes crossing machines on the reduceByKey shuffle edges
// drop by at least 2x while the outputs stay identical. The pageTypes
// variant is the interesting negative control: there the join has already
// hash-partitioned the data by page key, so the reduceByKey shuffle is
// key-local and byte-free with or without combiners — the test pins both
// facts.
func TestCombinersShrinkReduceByKeyShuffles(t *testing.T) {
	const machines = 4
	run := func(spec VisitCountSpec, combine bool) (rbkBytes, jobBytes int64) {
		t.Helper()
		want := groundTruth(t, spec)
		// The operators whose emissions cross the reduceByKey shuffle edges:
		// without the rewrite the raw producers, with it the combiners.
		g, err := spec.CompileMitos()
		if err != nil {
			t.Fatal(err)
		}
		plan, err := core.BuildPlan(g, machines)
		if err != nil {
			t.Fatal(err)
		}
		if combine {
			plan.InsertCombiners()
		}
		producers := make(map[string]bool)
		for _, op := range plan.Ops {
			if op.Synth == core.SynthNone && op.Instr.Kind == ir.OpReduceByKey {
				producers[op.Inputs[0].Producer.Instr.Var] = true
			}
		}
		if len(producers) == 0 {
			t.Fatal("no reduceByKey shuffle edges in the Visit Count plan")
		}

		ob := obs.New()
		opts := core.DefaultOptions()
		opts.Combiners = combine
		opts.Obs = ob
		cl, err := cluster.New(cluster.FastConfig(machines))
		if err != nil {
			t.Fatal(err)
		}
		st := freshStore(t, spec)
		res, err := RunMitos(spec, st, cl, opts)
		if err != nil {
			cl.Close()
			t.Fatalf("RunMitos(combine=%t): %v", combine, err)
		}
		cl.Close()
		diffOutputs(t, want, st)
		snap := ob.Snapshot()
		for name := range producers {
			rbkBytes += snap.TotalFor(name, "bytes_sent")
		}
		return rbkBytes, res.Job.BytesSent
	}

	plain := VisitCountSpec{Days: 4, VisitsPerDay: 2000, Pages: 40, WithDiff: true, Seed: 25}
	offRbk, offJob := run(plain, false)
	onRbk, onJob := run(plain, true)
	if onRbk == 0 {
		t.Fatal("no remote bytes on the combined reduceByKey edges; shuffle not exercised")
	}
	if offRbk < 2*onRbk {
		t.Errorf("reduceByKey shuffle bytes: off=%d on=%d, want at least a 2x drop", offRbk, onRbk)
	}
	if offJob < 2*onJob {
		t.Errorf("whole-job remote bytes: off=%d on=%d, want at least a 2x drop", offJob, onJob)
	}
	t.Logf("plain: rbk shuffle bytes off=%d on=%d (%.1fx), job bytes off=%d on=%d (%.1fx)",
		offRbk, onRbk, float64(offRbk)/float64(onRbk), offJob, onJob, float64(offJob)/float64(onJob))

	pt := VisitCountSpec{Days: 4, VisitsPerDay: 2000, Pages: 40, WithDiff: true, WithPageTypes: true, Seed: 25}
	ptOffRbk, ptOffJob := run(pt, false)
	ptOnRbk, ptOnJob := run(pt, true)
	if ptOffRbk != 0 || ptOnRbk != 0 {
		t.Errorf("pageTypes reduceByKey shuffle bytes: off=%d on=%d, want 0 (join already key-partitions)", ptOffRbk, ptOnRbk)
	}
	if ptOnJob > ptOffJob {
		t.Errorf("pageTypes whole-job remote bytes regressed with combiners: off=%d on=%d", ptOffJob, ptOnJob)
	}
}
