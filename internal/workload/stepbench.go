package workload

import (
	"fmt"

	"github.com/mitos-project/mitos/internal/cluster"
	"github.com/mitos-project/mitos/internal/core"
	"github.com/mitos-project/mitos/internal/flinklike"
	"github.com/mitos-project/mitos/internal/ir"
	"github.com/mitos-project/mitos/internal/lang"
	"github.com/mitos-project/mitos/internal/naiadlike"
	"github.com/mitos-project/mitos/internal/sparklike"
	"github.com/mitos-project/mitos/internal/store"
	"github.com/mitos-project/mitos/internal/tflike"
	"github.com/mitos-project/mitos/internal/val"
)

// This file implements the iteration-step-overhead microbenchmark of
// Fig. 7: a simple loop with minimal data processing per step, run on all
// six systems. The benchmark harness divides the measured duration by the
// step count.

// StepLoopScript is the Mitos microbenchmark program.
func StepLoopScript(steps int) string {
	return fmt.Sprintf(`x = 0
while (x < %d) {
  x = x + 1
}
newBag(x).writeFile("out")
`, steps)
}

// StepMitos runs the microbenchmark loop on the Mitos runtime and returns
// the execution result (the chaining ablation reads its engine counters).
func StepMitos(cl *cluster.Cluster, st store.Store, steps int, opts core.Options) (*core.Result, error) {
	prog, err := lang.Parse(StepLoopScript(steps))
	if err != nil {
		return nil, err
	}
	if _, err := lang.Check(prog); err != nil {
		return nil, err
	}
	g, err := ir.CompileToSSA(prog)
	if err != nil {
		return nil, err
	}
	return core.Execute(g, st, cl, opts)
}

// StepSpark launches one tiny job per iteration step.
func StepSpark(cl *cluster.Cluster, st store.Store, steps int) error {
	sess := sparklike.NewSession(cl, st)
	for i := 0; i < steps; i++ {
		n, err := sess.Parallelize([]val.Value{val.Int(int64(i))}).
			Map(func(x val.Value) (val.Value, error) { return val.Int(x.AsInt() + 1), nil }).
			Count()
		if err != nil {
			return err
		}
		if n != 1 {
			return fmt.Errorf("workload: step %d count = %d", i, n)
		}
	}
	return nil
}

// StepFlinkSeparateJobs launches one flinklike environment (job) per step.
func StepFlinkSeparateJobs(cl *cluster.Cluster, st store.Store, steps int) error {
	for i := 0; i < steps; i++ {
		env := flinklike.NewEnv(cl, st)
		n, err := env.FromSlice([]val.Value{val.Int(int64(i))}).
			Map(func(x val.Value) (val.Value, error) { return val.Int(x.AsInt() + 1), nil }).
			Count()
		if err != nil {
			return err
		}
		if n != 1 {
			return fmt.Errorf("workload: step %d count = %d", i, n)
		}
	}
	return nil
}

// StepFlinkNative runs the loop as one native iteration.
func StepFlinkNative(cl *cluster.Cluster, st store.Store, steps int, env *flinklike.Env) error {
	if env == nil {
		env = flinklike.NewEnv(cl, st)
	}
	initial := env.FromSlice([]val.Value{val.Int(0)})
	out, err := env.Iterate(initial, steps, func(step int, in *flinklike.DataSet) (*flinklike.DataSet, error) {
		return in.Map(func(x val.Value) (val.Value, error) { return val.Int(x.AsInt() + 1), nil }), nil
	})
	if err != nil {
		return err
	}
	elems, err := out.Collect()
	if err != nil {
		return err
	}
	if len(elems) != 1 || elems[0].AsInt() != int64(steps) {
		return fmt.Errorf("workload: flink native loop result %v", elems)
	}
	return nil
}

// StepNaiad runs the loop on the timely-style comparator.
func StepNaiad(cl *cluster.Cluster, steps int) error {
	counters := make([]int64, cl.Machines())
	_, err := naiadlike.Run(cl, steps, func(worker, step int) {
		counters[worker]++
	})
	if err != nil {
		return err
	}
	for w, c := range counters {
		if c != int64(steps) {
			return fmt.Errorf("workload: naiad worker %d ran %d steps, want %d", w, c, steps)
		}
	}
	return nil
}

// StepTF runs the loop on the switch/merge comparator.
func StepTF(cl *cluster.Cluster, steps int) error {
	counters := make([]int64, cl.Machines())
	loop := tflike.NewWhileLoop(cl,
		func(t tflike.Token) bool { return t.Step < steps },
		func(worker int, t tflike.Token) { counters[worker]++ },
	)
	ran, err := loop.Run()
	if err != nil {
		return err
	}
	if ran != steps {
		return fmt.Errorf("workload: tf loop ran %d steps, want %d", ran, steps)
	}
	return nil
}
