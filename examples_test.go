package mitos

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun executes every example under examples/ with small
// arguments and checks for a clean exit. Skipped with -short (each run
// compiles and executes a main package).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take a few seconds each")
	}
	args := map[string][]string{
		"quickstart":   nil,
		"visitcount":   {"-days", "6", "-visits", "200", "-pages", "40"},
		"pagerank":     {"-nodes", "60", "-iters", "4"},
		"kmeans":       {"-points", "120", "-iters", "3"},
		"hyperparam":   {"-rates", "2", "-steps", "5", "-samples", "80"},
		"transclosure": {"-nodes", "25", "-mode", "delta"},
		"connected":    {"-nodes", "300", "-machines", "3"},
		"sssp":         {"-nodes", "200", "-machines", "3"},
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			extra, ok := args[name]
			if !ok {
				t.Fatalf("example %s has no smoke-test arguments registered", name)
			}
			cmd := exec.Command("go", append([]string{"run", "./" + filepath.Join("examples", name)}, extra...)...)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			if strings.Contains(string(out), "MISMATCH") {
				t.Fatalf("example reported a mismatch:\n%s", out)
			}
		})
	}
}
