package mitos

import (
	"github.com/mitos-project/mitos/internal/lang"
	"github.com/mitos-project/mitos/internal/val"
)

// This file is the programmatic front end: a fluent builder producing the
// same AST the script parser does. Use it when embedding Mitos in a Go
// application; use Compile with script text otherwise.

// Builder accumulates the statements of a program or block.
type Builder = lang.Builder

// Expr is an expression of the Mitos language.
type Expr = lang.Expr

// NewBuilder returns an empty program builder. Finish with Build.
func NewBuilder() *Builder { return lang.NewBuilder() }

// Build compiles the builder's program.
func Build(b *Builder) (*Program, error) { return CompileAST(b.Program()) }

// Value is a dynamically typed element value (int, float, string, bool, or
// tuple).
type Value = val.Value

// Int returns an integer Value.
func Int(i int64) Value { return val.Int(i) }

// Float returns a floating-point Value.
func Float(f float64) Value { return val.Float(f) }

// Str returns a string Value.
func Str(s string) Value { return val.Str(s) }

// Bool returns a boolean Value.
func Bool(b bool) Value { return val.Bool(b) }

// Tuple returns a tuple Value.
func Tuple(fields ...Value) Value { return val.Tuple(fields...) }

// Pair returns a (key, value) tuple, the shape consumed by join and
// reduceByKey.
func Pair(k, v Value) Value { return val.Pair(k, v) }

// Expression constructors (see the lang package for the full set).

// Var references a program variable.
func Var(name string) Expr { return lang.Var(name) }

// IntLit returns an integer literal.
func IntLit(i int64) Expr { return lang.IntLit(i) }

// FloatLit returns a float literal.
func FloatLit(f float64) Expr { return lang.FloatLit(f) }

// StrLit returns a string literal.
func StrLit(s string) Expr { return lang.StrLit(s) }

// BoolLit returns a boolean literal.
func BoolLit(b bool) Expr { return lang.BoolLit(b) }

// Add returns x + y (numbers) or concatenation (strings).
func Add(x, y Expr) Expr { return lang.Add(x, y) }

// Sub returns x - y.
func Sub(x, y Expr) Expr { return lang.Sub(x, y) }

// Mul returns x * y.
func Mul(x, y Expr) Expr { return lang.Mul(x, y) }

// Div returns x / y.
func Div(x, y Expr) Expr { return lang.Div(x, y) }

// Eq returns x == y.
func Eq(x, y Expr) Expr { return lang.Eq(x, y) }

// Neq returns x != y.
func Neq(x, y Expr) Expr { return lang.Neq(x, y) }

// Lt returns x < y.
func Lt(x, y Expr) Expr { return lang.Lt(x, y) }

// Leq returns x <= y.
func Leq(x, y Expr) Expr { return lang.Leq(x, y) }

// Gt returns x > y.
func Gt(x, y Expr) Expr { return lang.Gt(x, y) }

// Geq returns x >= y.
func Geq(x, y Expr) Expr { return lang.Geq(x, y) }

// ReadFile returns readFile(name).
func ReadFile(name Expr) Expr { return lang.ReadFile(name) }

// NewBag returns newBag(x), a one-element bag.
func NewBag(x Expr) Expr { return lang.NewBag(x) }

// EmptyBag returns empty().
func EmptyBag() Expr { return lang.EmptyBag() }

// Only returns only(b): the single element of a singleton bag as a scalar.
func Only(b Expr) Expr { return lang.Only(b) }

// TupleOf returns the tuple expression (elems...).
func TupleOf(elems ...Expr) Expr { return lang.TupleOf(elems...) }

// FieldOf returns x.index.
func FieldOf(x Expr, index int) Expr { return lang.FieldOf(x, index) }

// Fn1 returns a one-parameter lambda.
func Fn1(param string, body Expr) Expr { return lang.Fn1(param, body) }

// Fn2 returns a two-parameter lambda.
func Fn2(p1, p2 string, body Expr) Expr { return lang.Fn2(p1, p2, body) }

// Native returns a native Go UDF usable wherever a lambda is.
func Native(label string, arity int, fn func(args []Value) Value) Expr {
	return lang.Native(label, arity, fn)
}

// MapBag returns recv.map(f).
func MapBag(recv, f Expr) Expr { return lang.MapBag(recv, f) }

// FlatMapBag returns recv.flatMap(f).
func FlatMapBag(recv, f Expr) Expr { return lang.FlatMapBag(recv, f) }

// FilterBag returns recv.filter(p).
func FilterBag(recv, p Expr) Expr { return lang.FilterBag(recv, p) }

// JoinBags returns a.join(b).
func JoinBags(a, b Expr) Expr { return lang.JoinBags(a, b) }

// ReduceByKey returns recv.reduceByKey(f).
func ReduceByKey(recv, f Expr) Expr { return lang.ReduceByKey(recv, f) }

// ReduceBag returns recv.reduce(f).
func ReduceBag(recv, f Expr) Expr { return lang.ReduceBag(recv, f) }

// SumBag returns recv.sum().
func SumBag(recv Expr) Expr { return lang.SumBag(recv) }

// CountBag returns recv.count().
func CountBag(recv Expr) Expr { return lang.CountBag(recv) }

// DistinctBag returns recv.distinct().
func DistinctBag(recv Expr) Expr { return lang.DistinctBag(recv) }

// UnionBags returns a.union(b).
func UnionBags(a, b Expr) Expr { return lang.UnionBags(a, b) }

// CrossBags returns a.cross(b).
func CrossBags(a, b Expr) Expr { return lang.CrossBags(a, b) }

// DeltaMergeBags returns seed.deltaMerge(delta, f): the workset-iteration
// operator, merging delta into an indexed solution set by key with the
// commutative+associative f and emitting the changed pairs.
func DeltaMergeBags(seed, delta, f Expr) Expr { return lang.DeltaMergeBags(seed, delta, f) }

// SolutionBag returns recv.solution(): the full solution set held by the
// deltaMerge that produced recv.
func SolutionBag(recv Expr) Expr { return lang.SolutionBag(recv) }

// Cond returns the eager ternary cond(c, a, b).
func Cond(c, a, b Expr) Expr { return lang.Cond(c, a, b) }
