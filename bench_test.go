package mitos

// Benchmarks regenerating the paper's evaluation, one per figure, plus
// per-system and ablation benchmarks. Each figure benchmark runs its full
// experiment sweep (quick scale) per iteration; use cmd/mitos-bench for
// the full-scale tables and per-cell output.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"github.com/mitos-project/mitos/internal/cluster"
	"github.com/mitos-project/mitos/internal/core"
	"github.com/mitos-project/mitos/internal/dfs"
	"github.com/mitos-project/mitos/internal/experiments"
	"github.com/mitos-project/mitos/internal/flinklike"
	"github.com/mitos-project/mitos/internal/ir"
	"github.com/mitos-project/mitos/internal/store"
	"github.com/mitos-project/mitos/internal/workload"
)

func benchFigure(b *testing.B, f func(experiments.Options) (*experiments.Table, error)) {
	b.Helper()
	o := experiments.Options{Quick: true}
	for i := 0; i < b.N; i++ {
		t, err := f(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Cells) == 0 {
			b.Fatal("empty result table")
		}
	}
}

// BenchmarkFig1 regenerates Fig. 1 (Spark vs Flink motivation experiment).
func BenchmarkFig1(b *testing.B) { benchFigure(b, experiments.Fig1) }

// BenchmarkFig5 regenerates Fig. 5 (strong scaling for Visit Count).
func BenchmarkFig5(b *testing.B) { benchFigure(b, experiments.Fig5) }

// BenchmarkFig6 regenerates Fig. 6 (input-size sweep with pageTypes).
func BenchmarkFig6(b *testing.B) { benchFigure(b, experiments.Fig6) }

// BenchmarkFig7 regenerates Fig. 7 (per-step overhead microbenchmark).
func BenchmarkFig7(b *testing.B) { benchFigure(b, experiments.Fig7) }

// BenchmarkFig8 regenerates Fig. 8 (loop-invariant hoisting sweep).
func BenchmarkFig8(b *testing.B) { benchFigure(b, experiments.Fig8) }

// BenchmarkFig9 regenerates Fig. 9 (loop pipelining ablation).
func BenchmarkFig9(b *testing.B) { benchFigure(b, experiments.Fig9) }

// BenchmarkAblationGrid measures the 2x2 pipelining x hoisting grid
// (DESIGN.md Sec. 6 extension).
func BenchmarkAblationGrid(b *testing.B) { benchFigure(b, experiments.AblationGrid) }

// benchSpec is the shared Visit Count workload for per-system benchmarks.
var benchSpec = workload.VisitCountSpec{
	Days: 10, VisitsPerDay: 1000, Pages: 100,
	WithDiff: true, WithPageTypes: true, Seed: 99,
}

func benchCluster(b *testing.B, machines int) *cluster.Cluster {
	b.Helper()
	cl, err := cluster.New(cluster.DefaultConfig(machines))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cl.Close)
	return cl
}

func benchStore(b *testing.B) store.Store {
	b.Helper()
	st := dfs.New(dfs.Config{BlockSize: 2048})
	if err := benchSpec.Generate(st); err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkVisitCountMitos measures one full Visit Count run on Mitos.
func BenchmarkVisitCountMitos(b *testing.B) {
	cl := benchCluster(b, 4)
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.RunMitos(benchSpec, st, cl, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVisitCountMitosNoPipelining is Mitos without step overlap.
func BenchmarkVisitCountMitosNoPipelining(b *testing.B) {
	cl := benchCluster(b, 4)
	st := benchStore(b)
	opts := core.DefaultOptions()
	opts.Pipelining = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.RunMitos(benchSpec, st, cl, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVisitCountMitosNoHoisting is Mitos rebuilding static join sides.
func BenchmarkVisitCountMitosNoHoisting(b *testing.B) {
	cl := benchCluster(b, 4)
	st := benchStore(b)
	opts := core.DefaultOptions()
	opts.Hoisting = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.RunMitos(benchSpec, st, cl, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVisitCountSpark measures the Spark baseline.
func BenchmarkVisitCountSpark(b *testing.B) {
	cl := benchCluster(b, 4)
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := workload.RunSpark(benchSpec, st, cl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVisitCountFlink measures the Flink native-iteration baseline.
func BenchmarkVisitCountFlink(b *testing.B) {
	cl := benchCluster(b, 4)
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := flinklike.NewEnv(cl, st)
		env.PenaltyPerOp = experiments.FlinkPenaltyPerOp
		if err := workload.RunFlinkNative(benchSpec, st, cl, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile measures front end + SSA + planning for the Visit Count
// program.
func BenchmarkCompile(b *testing.B) {
	src := benchSpec.Script()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepOverheadMitos measures Mitos' per-iteration coordination
// cost in isolation (the Fig. 7 loop at a fixed cluster size).
func BenchmarkStepOverheadMitos(b *testing.B) {
	cl := benchCluster(b, 8)
	const steps = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.StepMitos(cl, store.NewMemStore(), steps, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N*steps), "µs/step")
}

// BenchmarkBatchSize is an engine ablation (DESIGN.md Sec. 6): transfer
// batch size vs end-to-end Visit Count time.
func BenchmarkBatchSize(b *testing.B) {
	for _, bs := range []int{1, 16, 128, 1024} {
		b.Run(fmt.Sprintf("batch%d", bs), func(b *testing.B) {
			cl := benchCluster(b, 4)
			st := benchStore(b)
			opts := core.DefaultOptions()
			opts.BatchSize = bs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := workload.RunMitos(benchSpec, st, cl, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCopyPropagationAblation compares Visit Count with and without
// the optional copy-propagation pass (extension beyond the paper: fewer
// dataflow operators, at the cost of losing the paper's one-node-per-
// assignment correspondence).
func BenchmarkCopyPropagationAblation(b *testing.B) {
	for _, propagate := range []bool{false, true} {
		name := "keepCopies"
		if propagate {
			name = "propagated"
		}
		b.Run(name, func(b *testing.B) {
			cl := benchCluster(b, 4)
			st := benchStore(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := benchSpec.CompileMitos()
				if err != nil {
					b.Fatal(err)
				}
				if propagate {
					ir.PropagateCopies(g)
				}
				if _, err := core.Execute(g, st, cl, core.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
