package mitos

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/mitos-project/mitos/internal/ir"
)

// obsTestInput seeds st with the "in" dataset the test script reads.
func obsTestInput(t *testing.T, st Store) {
	t.Helper()
	if err := st.WriteDataset("in", []Value{Int(1), Int(2), Int(3), Int(4)}); err != nil {
		t.Fatal(err)
	}
}

// TestObserverDifferentialCounts runs a quickstart-style iterative program
// on the sequential reference interpreter with per-instruction element
// counting, then on the distributed runtime with an observer, and checks
// that every operator's elements_out (summed over machines) matches the
// interpreter's ground truth exactly.
func TestObserverDifferentialCounts(t *testing.T) {
	p, err := Compile(testScript)
	if err != nil {
		t.Fatal(err)
	}

	ref := NewMemStore()
	obsTestInput(t, ref)
	counts := map[string]int64{}
	it := &ir.Interp{Store: ref, OpCounts: counts}
	if err := it.Run(p.ssa); err != nil {
		t.Fatal(err)
	}

	st := NewMemStore()
	obsTestInput(t, st)
	o := NewObserver()
	res, err := p.Run(st, Config{Machines: 3, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	snap := o.Snapshot()

	// A clean completion must not have raced its own shutdown: no envelope
	// may have been dropped into a closed mailbox, and every byte the
	// transport sent must have been received.
	if got := snap.Total("mailbox_dropped"); got != 0 {
		t.Errorf("mailbox_dropped = %d on clean completion, want 0", got)
	}
	if res.BytesSent != res.BytesReceived {
		t.Errorf("BytesSent = %d != BytesReceived = %d on clean completion", res.BytesSent, res.BytesReceived)
	}
	if res.BytesSent == 0 {
		t.Error("no remote bytes recorded on a 3-machine run")
	}

	nonzero := 0
	for v, want := range counts {
		got := snap.TotalFor(v, "elements_out")
		if got != want {
			t.Errorf("operator %s: distributed elements_out = %d, interpreter = %d", v, got, want)
		}
		if want > 0 {
			nonzero++
		}
	}
	if nonzero < 5 {
		t.Fatalf("only %d operators produced elements; differential check is vacuous", nonzero)
	}

	// The distributed store must agree with the reference too.
	refOut, err := ref.ReadDataset("out")
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.ReadDataset("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(refOut) != 1 || len(out) != 1 || !refOut[0].Equal(out[0]) {
		t.Fatalf("results disagree: distributed %v, reference %v", out, refOut)
	}
}

const ctrlFlowScript = `
x = 0
while (x < 5) {
  x = x + 1
}
newBag(x).writeFile("out")
`

// branchVisits runs the reference interpreter and counts how many visited
// blocks end in a conditional branch — the ground-truth number of
// control-flow decisions.
func branchVisits(t *testing.T, p *Program, st Store) (decisions, visits int) {
	t.Helper()
	var trace []ir.BlockID
	it := &ir.Interp{Store: st, Trace: &trace}
	if err := it.Run(p.ssa); err != nil {
		t.Fatal(err)
	}
	for _, b := range trace {
		if p.ssa.Blocks[b].Term.Kind == ir.TermBranch {
			decisions++
		}
	}
	return decisions, len(trace)
}

// TestControlFlowCounters checks the paper's coordination invariants
// through the metrics: an N-step loop makes one decision per conditional
// block visit, the control-flow manager broadcasts every execution-path
// position to every machine, and pipelined execution pays zero barriers
// (non-pipelined: one per step after the first).
func TestControlFlowCounters(t *testing.T) {
	p, err := Compile(ctrlFlowScript)
	if err != nil {
		t.Fatal(err)
	}
	wantDecisions, wantVisits := branchVisits(t, p, NewMemStore())
	if wantDecisions == 0 {
		t.Fatal("test program has no conditional branches")
	}

	const machines = 3
	for _, tc := range []struct {
		name   string
		noPipe bool
	}{
		{"pipelined", false},
		{"non-pipelined", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := NewObserver()
			res, err := p.Run(NewMemStore(), Config{
				Machines:          machines,
				DisablePipelining: tc.noPipe,
				Observer:          o,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Steps != wantVisits {
				t.Fatalf("Steps = %d, interpreter visited %d blocks", res.Steps, wantVisits)
			}
			snap := o.Snapshot()

			if got := snap.Total("decisions"); got != int64(wantDecisions) {
				t.Errorf("decisions = %d, want %d", got, wantDecisions)
			}
			bcast := snap.PerMachine("broadcasts")
			if len(bcast) != machines {
				t.Errorf("broadcasts recorded for %d machines, want %d", len(bcast), machines)
			}
			// Pipelined execution uses execution templates: one broadcast
			// per path *segment* (installs + instantiations), covering every
			// position. Non-pipelined execution broadcasts each position.
			wantBcast := int64(res.Steps)
			if !tc.noPipe {
				wantBcast = int64(res.TemplateInstalls + res.TemplateInstantiations)
				if res.TemplateInstalls == 0 || wantBcast >= int64(res.Steps) {
					t.Errorf("templates: installs=%d instantiations=%d over %d steps, want a compressed segment schedule",
						res.TemplateInstalls, res.TemplateInstantiations, res.Steps)
				}
			}
			for m, n := range bcast {
				if n != wantBcast {
					t.Errorf("machine %d received %d broadcasts, want one per control frame (%d)", m, n, wantBcast)
				}
			}
			wantBarriers := int64(0)
			if tc.noPipe {
				wantBarriers = int64(res.Steps - 1)
			}
			if got := snap.Total("barriers"); got != wantBarriers {
				t.Errorf("barriers = %d, want %d", got, wantBarriers)
			}
			if got := snap.Total("mailbox_dropped"); got != 0 {
				t.Errorf("mailbox_dropped = %d on clean completion, want 0", got)
			}
		})
	}
}

// TestTraceExport runs a traced execution and validates the exported
// Chrome trace_event JSON: well-formed, non-empty, only known phase types,
// and containing both control-flow broadcast instants and bag spans.
func TestTraceExport(t *testing.T) {
	p, err := Compile(testScript)
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemStore()
	obsTestInput(t, st)
	o := NewTracingObserver()
	if _, err := p.Run(st, Config{Machines: 3, Observer: o}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteTrace(o, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Cat  string   `json:"cat"`
			Ph   string   `json:"ph"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	seen := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("complete event %q has invalid dur", ev.Name)
			}
		case "i", "M":
		default:
			t.Fatalf("unknown phase %q in event %q", ev.Ph, ev.Name)
		}
		seen[ev.Cat]++
		seen[ev.Cat+"/"+ev.Name]++
	}
	// Bag spans are named after their operator, so check the category;
	// control-flow events have fixed names. Templated (default) execution
	// emits segment broadcasts instead of per-position ones.
	if seen["cfm/broadcast"] == 0 && seen["cfm/broadcast_segment"] == 0 {
		t.Fatalf("trace missing control-flow broadcast events")
	}
	for _, want := range []string{"bag", "cfm/decision"} {
		if seen[want] == 0 {
			keys := make([]string, 0, len(seen))
			for k := range seen {
				keys = append(keys, k)
			}
			t.Fatalf("trace missing %q events; saw %v", want, keys)
		}
	}
}
