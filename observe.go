package mitos

import (
	"io"

	"github.com/mitos-project/mitos/internal/obs"
	"github.com/mitos-project/mitos/internal/obs/httpserve"
)

// Observer collects engine-wide metrics (and optionally a timeline trace)
// for one or more executions. Attach it via Config.Observer; read results
// with Report or export the timeline with WriteTrace. A nil *Observer
// disables all instrumentation — the engine then pays one pointer check
// per recording site.
type Observer = obs.Observer

// RunReport is a point-in-time snapshot of every metric an execution
// recorded: counters, gauges, and duration histograms keyed by
// (machine, operator, metric). Helper methods (Total, TotalFor,
// PerMachine, PerOp, Counter, Gauge) aggregate across keys; String renders
// an aligned table.
//
// Useful metric names include per-operator "elements_in"/"elements_out",
// "bags_out", "mailbox_hwm", per-machine "broadcasts" (control-flow
// manager path extensions), per-condition-operator "decisions",
// "join_builds"/"join_build_reuses" (hoisting), and driver-side
// "barriers", "jobs_launched", and "ctrl_messages".
type RunReport = obs.Snapshot

// NewObserver returns an observer that collects metrics only.
func NewObserver() *Observer { return obs.New() }

// NewTracingObserver returns an observer that additionally records a
// timeline of bag lifecycles, control-flow broadcasts, barriers, job
// launches, and cross-machine batches. Export it with WriteTrace and load
// the file in chrome://tracing or Perfetto.
func NewTracingObserver() *Observer { return obs.NewTracing() }

// NewLineageObserver returns an observer that collects metrics and
// additionally records per-bag lineage: provenance (input bags, producing
// operator, execution-path position), open/close timestamps, element and
// byte counts, and per-consumer delivery times. Lineage enables
// Result.CriticalPath and the introspection server's /lineage and
// /criticalpath endpoints. Chain EnableLineage onto NewTracingObserver to
// combine lineage with a timeline trace.
func NewLineageObserver() *Observer { return obs.New().EnableLineage() }

// IntrospectionServer is a live introspection HTTP server. It serves
// /metrics (Prometheus text exposition of every engine metric), /jobs and
// /jobs/{id} (the live dataflow graph with per-edge queue depths, mailbox
// high-water marks, transport backlogs, and per-instance bag progress),
// /jobs/{id}/dot, /lineage, /lineage/{bagid}, /criticalpath, and
// /debug/pprof. Start one with ServeIntrospection and attach it to runs
// via Config.HTTP (or let Config.HTTPAddr manage one per run).
type IntrospectionServer = httpserve.Server

// ServeIntrospection starts a live introspection server listening on addr
// (host:port; port 0 picks an ephemeral port, see Addr) exposing o's
// metrics and lineage. Executions register themselves when run with
// Config.HTTP set to the returned server. Close stops it.
func ServeIntrospection(addr string, o *Observer) (*IntrospectionServer, error) {
	return httpserve.Serve(addr, o)
}

// Report snapshots all metrics recorded so far.
func Report(o *Observer) *RunReport { return o.Snapshot() }

// WriteTrace writes the observer's timeline in the Chrome trace_event
// JSON format. Valid (empty) output is produced even when o was not
// created by NewTracingObserver.
func WriteTrace(o *Observer, w io.Writer) error { return o.Trc().WriteJSON(w) }
