package mitos

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/mitos-project/mitos/internal/lang"
	"github.com/mitos-project/mitos/internal/val"
)

// ReadTextDataset parses a text dataset: one element per line. A line
// holds either a single literal (integer, float, true/false, or a bare
// string) or a comma-separated tuple of such literals, e.g.
//
//	page7
//	page7,3
//	a,1.5,true
//
// Quoting is not needed: a field that does not parse as a number or bool
// is a string.
func ReadTextDataset(r io.Reader) ([]Value, error) {
	var out []Value
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) == 1 {
			out = append(out, parseField(fields[0]))
			continue
		}
		tup := make([]Value, len(fields))
		for i, f := range fields {
			tup[i] = parseField(f)
		}
		out = append(out, val.Tuple(tup...))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mitos: reading dataset: %w", err)
	}
	return out, nil
}

func parseField(s string) Value {
	s = strings.TrimSpace(s)
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return val.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return val.Float(f)
	}
	switch s {
	case "true":
		return val.Bool(true)
	case "false":
		return val.Bool(false)
	}
	return val.Str(s)
}

// WriteTextDataset writes elements in the format ReadTextDataset parses.
// Nested tuples are flattened one level; deeper nesting falls back to the
// display syntax.
func WriteTextDataset(w io.Writer, elems []Value) error {
	bw := bufio.NewWriter(w)
	for _, e := range elems {
		if e.Kind() == val.KindTuple {
			for i, f := range e.Fields() {
				if i > 0 {
					if _, err := bw.WriteString(","); err != nil {
						return err
					}
				}
				if _, err := bw.WriteString(fieldText(f)); err != nil {
					return err
				}
			}
		} else if _, err := bw.WriteString(fieldText(e)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func fieldText(v Value) string {
	if v.Kind() == val.KindString {
		return v.AsStr()
	}
	return lang.Render(v)
}
